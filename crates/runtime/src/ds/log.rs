//! A durable, multi-producer **shared log** over disaggregated memory —
//! the CXL-native application the paper's introduction motivates (cloud
//! data management over pooled memory), in the style of Corfu-family
//! shared logs.
//!
//! Appenders on any compute node reserve a slot with one `FAA` on the tail
//! counter, write the payload into the slot, and persist both through the
//! [`Persistence`] strategy; an append is durable before it returns (with
//! a FliT-family strategy). Slots hold `value + 1`, so `0` means "not yet
//! (durably) written".
//!
//! **Holes.** A producer that crashes between reserving a slot and
//! persisting it leaves a hole; later completed appends are *not* lost
//! (durable linearizability). [`DurableLog::recover`] seals such holes
//! with a junk marker, Corfu-style, so readers distinguish "never written"
//! from "crashed writer" and the durable prefix is well defined.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::api::Word;
use crate::backend::AsNode;
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::SharedHeap;

/// What a log slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState<T: Word = u64> {
    /// No (durable) write has reached the slot.
    Empty,
    /// A crashed writer's slot, sealed by recovery.
    Junk,
    /// A committed payload.
    Value(T),
}

const JUNK: u64 = u64::MAX;

/// An append-only durable shared log of [`Word`] payloads (default
/// `u64`) with `capacity` slots.
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_runtime::SlotState;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let log = session.create_log::<u64>("events", 16)?;
///
/// let i = log.append(&session, 42)?.expect("log has room");
/// assert_eq!(log.read(&session, i)?, SlotState::Value(42));
///
/// // The append survives a crash of the memory node (FliT + NVM);
/// // reattach by name.
/// cluster.crash(cluster.memory_node());
/// cluster.recover(cluster.memory_node());
/// let log = session.open_log::<u64>("events")?;
/// log.recover(&session)?;
/// assert_eq!(log.read(&session, i)?, SlotState::Value(42));
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableLog<T: Word = u64> {
    /// Tail reservation counter; the `capacity` slot cells follow it
    /// contiguously.
    tail: Loc,
    /// First slot cell (`tail + 1`).
    slots: Loc,
    capacity: u32,
    persist: Arc<dyn Persistence>,
    _values: PhantomData<T>,
}

impl<T: Word> DurableLog<T> {
    /// Allocates a log with `capacity` slots from `heap`.
    ///
    /// Returns `None` if the heap cannot fit `capacity + 1` cells.
    pub fn create(heap: &SharedHeap, capacity: u32, persist: Arc<dyn Persistence>) -> Option<Self> {
        // One allocation keeps tail + slots contiguous even under
        // concurrent allocators, so the log reattaches from its tail cell
        // alone (see [`DurableLog::attach`]).
        let tail = heap.alloc(capacity.checked_add(1)?)?;
        Some(DurableLog {
            tail,
            slots: Loc::new(tail.owner, tail.addr.0 + 1),
            capacity,
            persist,
            _values: PhantomData,
        })
    }

    /// Attaches to an existing log after recovery: `tail` is the cell
    /// [`DurableLog::tail_cell`] reported at creation, `capacity` the
    /// original slot count.
    pub fn attach(tail: Loc, capacity: u32, persist: Arc<dyn Persistence>) -> Self {
        DurableLog {
            tail,
            slots: Loc::new(tail.owner, tail.addr.0 + 1),
            capacity,
            persist,
            _values: PhantomData,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The tail-reservation cell (exposed for fault-injection harnesses
    /// that simulate a producer crashing mid-append).
    pub fn tail_cell(&self) -> Loc {
        self.tail
    }

    /// Slot `i`'s backing cell (exposed for fault-injection harnesses).
    pub fn slot_cell(&self, i: u64) -> Loc {
        self.slot(i)
    }

    fn slot(&self, i: u64) -> Loc {
        Loc::new(self.slots.owner, self.slots.addr.0 + i as u32)
    }

    /// Appends `value`, returning its log index. Durable before returning
    /// (under a strict strategy).
    ///
    /// Returns `Ok(None)` when the log is full.
    ///
    /// # Panics
    ///
    /// Panics if the payload encodes to `u64::MAX - 1` or above (reserved
    /// for the junk marker) — encode payloads below that.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed; the reserved slot, if
    /// any, becomes a hole that [`DurableLog::recover`] seals.
    pub fn append(&self, at: &impl AsNode, value: T) -> OpResult<Option<u64>> {
        let node = at.as_node();
        let value = value.to_word();
        assert!(
            value < u64::MAX - 1,
            "encoded payload collides with the junk marker"
        );
        // Reserve: the FAA is flagged persistent so the reservation frontier
        // itself is durable (readers after a crash see how far reservations
        // went, bounding the hole-sealing scan).
        let idx = self.persist.shared_faa(node, self.tail, 1, true)?;
        if idx >= u64::from(self.capacity) {
            self.persist.complete_op(node)?;
            return Ok(None);
        }
        self.persist
            .shared_store(node, self.slot(idx), value + 1, true)?;
        self.persist.complete_op(node)?;
        Ok(Some(idx))
    }

    /// Reads slot `i`.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn read(&self, at: &impl AsNode, i: u64) -> OpResult<SlotState<T>> {
        let node = at.as_node();
        let raw = self.persist.shared_load(node, self.slot(i), true)?;
        self.persist.complete_op(node)?;
        Ok(match raw {
            0 => SlotState::Empty,
            JUNK => SlotState::Junk,
            v => SlotState::Value(T::from_word(v - 1)),
        })
    }

    /// The reservation frontier: indices below this were handed to some
    /// appender (not all of them necessarily committed).
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn frontier(&self, at: &impl AsNode) -> OpResult<u64> {
        let node = at.as_node();
        let t = self.persist.shared_load(node, self.tail, true)?;
        self.persist.complete_op(node)?;
        Ok(t.min(u64::from(self.capacity)))
    }

    /// Post-crash recovery: seals every hole below the reservation
    /// frontier with the junk marker (Corfu-style), so the log is again
    /// contiguous up to the frontier. Returns `(committed, sealed)`
    /// counts.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn recover(&self, at: &impl AsNode) -> OpResult<(u64, u64)> {
        let node = at.as_node();
        let frontier = self.frontier(node)?;
        let mut committed = 0;
        let mut sealed = 0;
        for i in 0..frontier {
            let raw = self.persist.shared_load(node, self.slot(i), true)?;
            if raw == 0 {
                self.persist.shared_store(node, self.slot(i), JUNK, true)?;
                sealed += 1;
            } else if raw != JUNK {
                committed += 1;
            }
        }
        self.persist.complete_op(node)?;
        Ok((committed, sealed))
    }

    /// All committed values in index order, skipping junk, up to the
    /// first empty slot.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn scan(&self, at: &impl AsNode) -> OpResult<Vec<(u64, T)>> {
        let node = at.as_node();
        let frontier = self.frontier(node)?;
        let mut out = Vec::new();
        for i in 0..frontier {
            match self.read(node, i)? {
                SlotState::Value(v) => out.push((i, v)),
                SlotState::Junk => {}
                SlotState::Empty => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::{FlitCxl0, FlitX86};
    use cxl0_model::{MachineId, SystemConfig};

    const MEM: MachineId = MachineId(2);

    fn setup() -> (Arc<SimFabric>, DurableLog) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 256));
        let heap = SharedHeap::new(f.config(), MEM);
        let log = DurableLog::create(&heap, 64, Arc::new(FlitCxl0::default())).unwrap();
        (f, log)
    }

    #[test]
    fn appends_get_consecutive_indices() {
        let (f, log) = setup();
        let node = f.node(MachineId(0));
        for expect in 0..5u64 {
            assert_eq!(log.append(&node, expect * 10).unwrap(), Some(expect));
        }
        assert_eq!(log.frontier(&node).unwrap(), 5);
        assert_eq!(
            log.scan(&node).unwrap(),
            vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]
        );
    }

    #[test]
    fn full_log_rejects_appends() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 8));
        let heap = SharedHeap::new(f.config(), MachineId(1));
        let log = DurableLog::create(&heap, 2, Arc::new(FlitCxl0::default())).unwrap();
        let node = f.node(MachineId(0));
        assert_eq!(log.append(&node, 1).unwrap(), Some(0));
        assert_eq!(log.append(&node, 2).unwrap(), Some(1));
        assert_eq!(log.append(&node, 3).unwrap(), None);
    }

    #[test]
    fn completed_appends_survive_memory_crash() {
        let (f, log) = setup();
        let node = f.node(MachineId(0));
        for v in [7u64, 8, 9] {
            log.append(&node, v).unwrap();
        }
        f.crash(MEM);
        f.recover(MEM);
        let (committed, sealed) = log.recover(&node).unwrap();
        assert_eq!((committed, sealed), (3, 0));
        assert_eq!(log.scan(&node).unwrap(), vec![(0, 7), (1, 8), (2, 9)]);
    }

    #[test]
    fn crashed_writer_leaves_a_sealed_hole() {
        let (f, log) = setup();
        let n0 = f.node(MachineId(0));
        let n1 = f.node(MachineId(1));
        log.append(&n0, 1).unwrap();
        // Simulate a writer that reserved slot 1 and crashed before the
        // payload persisted: reserve via raw backend FAA + an unflushed
        // LStore that dies with m1's cache.
        n1.faa(cxl0_model::StoreKind::Memory, log.tail, 1).unwrap();
        n1.lstore(log.slot(1), 99 + 1).unwrap();
        // A later append by a healthy producer completes normally.
        log.append(&n0, 3).unwrap();
        f.crash(MachineId(1)); // writer dies; its cached payload is gone...
        f.crash(MEM); // ...and the memory node crashes too
        f.recover(MachineId(1));
        f.recover(MEM);
        let (committed, sealed) = log.recover(&n0).unwrap();
        assert_eq!((committed, sealed), (2, 1));
        assert_eq!(log.read(&n0, 1).unwrap(), SlotState::Junk);
        // The completed append *after* the hole was not lost:
        assert_eq!(log.read(&n0, 2).unwrap(), SlotState::Value(3));
        assert_eq!(log.scan(&n0).unwrap(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn unsound_strategy_loses_committed_entries() {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(3, 256));
        let heap = SharedHeap::new(f.config(), MEM);
        let log = DurableLog::create(&heap, 16, Arc::new(FlitX86::default())).unwrap();
        let node = f.node(MachineId(0));
        log.append(&node, 5).unwrap();
        f.crash(MEM);
        f.recover(MEM);
        log.recover(&node).unwrap();
        // The x86-FliT port only reached the owner's cache: the entry
        // (and even the reservation) vanished with it.
        assert_eq!(log.scan(&node).unwrap(), vec![]);
    }

    #[test]
    fn concurrent_multi_producer_appends_are_unique_and_durable() {
        let (f, log) = setup();
        let mut handles = Vec::new();
        for t in 0..4usize {
            let node = f.node(MachineId(t % 2));
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for k in 0..10u64 {
                    if let Some(i) = log.append(&node, (t as u64) * 100 + k).unwrap() {
                        got.push(i);
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 40, "indices must be unique");
        f.crash(MEM);
        f.recover(MEM);
        let node = f.node(MachineId(0));
        let (committed, sealed) = log.recover(&node).unwrap();
        assert_eq!(committed, 40);
        assert_eq!(sealed, 0);
    }

    #[test]
    #[should_panic(expected = "junk marker")]
    fn junk_colliding_payload_rejected() {
        let (f, log) = setup();
        let node = f.node(MachineId(0));
        let _ = log.append(&node, u64::MAX - 1);
    }
}
