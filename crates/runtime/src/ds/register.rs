//! A durable atomic register: the simplest FliT-transformed object.

use std::marker::PhantomData;
use std::sync::Arc;

use cxl0_model::Loc;

use crate::api::Word;
use crate::backend::AsNode;
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::SharedHeap;

/// A durable register of one [`Word`] value (default `u64`), living in
/// one shared cell.
///
/// # Examples
///
/// ```
/// use cxl0_runtime::api::Cluster;
/// use cxl0_model::MachineId;
///
/// let cluster = Cluster::symmetric(2, 4096)?;
/// let session = cluster.session(MachineId(0));
/// let reg = session.create_register::<i64>("balance")?;
/// reg.write(&session, -7)?;
/// assert_eq!(reg.read(&session)?, -7);
///
/// // The write survives a crash of the memory node (NVM): durable
/// // linearizability. Reattach by name, no header Loc threading.
/// cluster.crash(cluster.memory_node());
/// cluster.recover(cluster.memory_node());
/// let reg = session.open_register::<i64>("balance")?;
/// assert_eq!(reg.read(&session)?, -7);
/// # Ok::<(), cxl0_runtime::api::ApiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableRegister<T: Word = u64> {
    cell: Loc,
    persist: Arc<dyn Persistence>,
    _values: PhantomData<T>,
}

impl<T: Word> DurableRegister<T> {
    /// Allocates a register from `heap`.
    ///
    /// Returns `None` if the heap is exhausted.
    pub fn create(heap: &SharedHeap, persist: Arc<dyn Persistence>) -> Option<Self> {
        Some(DurableRegister {
            cell: heap.alloc(1)?,
            persist,
            _values: PhantomData,
        })
    }

    /// Attaches to an existing register cell (e.g. after recovery).
    pub fn attach(cell: Loc, persist: Arc<dyn Persistence>) -> Self {
        DurableRegister {
            cell,
            persist,
            _values: PhantomData,
        }
    }

    /// The backing cell.
    pub fn cell(&self) -> Loc {
        self.cell
    }

    /// Reads the register.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn read(&self, at: &impl AsNode) -> OpResult<T> {
        let node = at.as_node();
        let v = self.persist.shared_load(node, self.cell, true)?;
        self.persist.complete_op(node)?;
        Ok(T::from_word(v))
    }

    /// Writes the register.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn write(&self, at: &impl AsNode, v: T) -> OpResult<()> {
        let node = at.as_node();
        self.persist
            .shared_store(node, self.cell, v.to_word(), true)?;
        self.persist.complete_op(node)
    }

    /// Compare-and-swap; returns `Ok(old)` / `Err(actual)`.
    ///
    /// # Errors
    ///
    /// Fails with `Crashed` if the issuing machine has crashed.
    pub fn cas(&self, at: &impl AsNode, old: T, new: T) -> OpResult<Result<T, T>> {
        let node = at.as_node();
        let r = self
            .persist
            .shared_cas(node, self.cell, old.to_word(), new.to_word(), true)?;
        self.persist.complete_op(node)?;
        Ok(r.map(T::from_word).map_err(T::from_word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::{FlitCxl0, FlitX86, NaiveMStore};
    use cxl0_model::{MachineId, SystemConfig};

    fn setup(p: Arc<dyn Persistence>) -> (Arc<SimFabric>, DurableRegister) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4));
        let heap = SharedHeap::new(f.config(), MachineId(1));
        let reg = DurableRegister::create(&heap, p).unwrap();
        (f, reg)
    }

    #[test]
    fn read_write_round_trip() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        assert_eq!(reg.read(&node).unwrap(), 11);
    }

    #[test]
    fn completed_write_survives_memory_node_crash() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        f.crash(MachineId(1));
        f.recover(MachineId(1));
        assert_eq!(reg.read(&node).unwrap(), 11);
    }

    #[test]
    fn naive_mstore_is_also_durable() {
        let (f, reg) = setup(Arc::new(NaiveMStore));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        f.crash(MachineId(1));
        f.recover(MachineId(1));
        assert_eq!(reg.read(&node).unwrap(), 11);
    }

    #[test]
    fn unadapted_flit_loses_the_write() {
        let (f, reg) = setup(Arc::new(FlitX86::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        // The LFlush parked the line in the owner's cache; the owner's
        // crash wipes it — the *completed* write is lost.
        f.crash(MachineId(1));
        f.recover(MachineId(1));
        assert_eq!(reg.read(&node).unwrap(), 0);
    }

    #[test]
    fn cas_through_register() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        assert_eq!(reg.cas(&node, 0, 1).unwrap(), Ok(0));
        assert_eq!(reg.cas(&node, 0, 2).unwrap(), Err(1));
    }

    #[test]
    fn attach_reuses_cell() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 42).unwrap();
        let reg2: DurableRegister =
            DurableRegister::attach(reg.cell(), Arc::new(FlitCxl0::default()));
        assert_eq!(reg2.read(&node).unwrap(), 42);
    }
}
