//! A durable atomic register: the simplest FliT-transformed object.

use std::sync::Arc;

use cxl0_model::Loc;

use crate::backend::NodeHandle;
use crate::error::OpResult;
use crate::flit::Persistence;
use crate::heap::SharedHeap;

/// A durable 64-bit register living in one shared cell.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cxl0_runtime::{SimFabric, SharedHeap, DurableRegister, FlitCxl0};
/// use cxl0_model::{SystemConfig, MachineId};
///
/// let fabric = SimFabric::new(SystemConfig::symmetric_nvm(2, 8));
/// let heap = SharedHeap::new(fabric.config(), MachineId(1));
/// let reg = DurableRegister::create(&heap, Arc::new(FlitCxl0::default())).unwrap();
///
/// let node = fabric.node(MachineId(0));
/// reg.write(&node, 7)?;
/// assert_eq!(reg.read(&node)?, 7);
///
/// // The write survives a crash of the writer *and* of the memory node
/// // (NVM): durable linearizability.
/// fabric.crash(MachineId(1));
/// fabric.recover(MachineId(1));
/// assert_eq!(reg.read(&node)?, 7);
/// # Ok::<(), cxl0_runtime::Crashed>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurableRegister {
    cell: Loc,
    persist: Arc<dyn Persistence>,
}

impl DurableRegister {
    /// Allocates a register from `heap`.
    ///
    /// Returns `None` if the heap is exhausted.
    pub fn create(heap: &SharedHeap, persist: Arc<dyn Persistence>) -> Option<Self> {
        Some(DurableRegister {
            cell: heap.alloc(1)?,
            persist,
        })
    }

    /// Attaches to an existing register cell (e.g. after recovery).
    pub fn attach(cell: Loc, persist: Arc<dyn Persistence>) -> Self {
        DurableRegister { cell, persist }
    }

    /// The backing cell.
    pub fn cell(&self) -> Loc {
        self.cell
    }

    /// Reads the register.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn read(&self, node: &NodeHandle) -> OpResult<u64> {
        let v = self.persist.shared_load(node, self.cell, true)?;
        self.persist.complete_op(node)?;
        Ok(v)
    }

    /// Writes the register.
    ///
    /// # Errors
    ///
    /// Fails if the issuing machine has crashed.
    pub fn write(&self, node: &NodeHandle, v: u64) -> OpResult<()> {
        self.persist.shared_store(node, self.cell, v, true)?;
        self.persist.complete_op(node)
    }

    /// Compare-and-swap; returns `Ok(old)` / `Err(actual)`.
    ///
    /// # Errors
    ///
    /// Fails with `Crashed` if the issuing machine has crashed.
    pub fn cas(&self, node: &NodeHandle, old: u64, new: u64) -> OpResult<Result<u64, u64>> {
        let r = self.persist.shared_cas(node, self.cell, old, new, true)?;
        self.persist.complete_op(node)?;
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimFabric;
    use crate::flit::{FlitCxl0, FlitX86, NaiveMStore};
    use cxl0_model::{MachineId, SystemConfig};

    fn setup(p: Arc<dyn Persistence>) -> (Arc<SimFabric>, DurableRegister) {
        let f = SimFabric::new(SystemConfig::symmetric_nvm(2, 4));
        let heap = SharedHeap::new(f.config(), MachineId(1));
        let reg = DurableRegister::create(&heap, p).unwrap();
        (f, reg)
    }

    #[test]
    fn read_write_round_trip() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        assert_eq!(reg.read(&node).unwrap(), 11);
    }

    #[test]
    fn completed_write_survives_memory_node_crash() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        f.crash(MachineId(1));
        f.recover(MachineId(1));
        assert_eq!(reg.read(&node).unwrap(), 11);
    }

    #[test]
    fn naive_mstore_is_also_durable() {
        let (f, reg) = setup(Arc::new(NaiveMStore));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        f.crash(MachineId(1));
        f.recover(MachineId(1));
        assert_eq!(reg.read(&node).unwrap(), 11);
    }

    #[test]
    fn unadapted_flit_loses_the_write() {
        let (f, reg) = setup(Arc::new(FlitX86::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 11).unwrap();
        // The LFlush parked the line in the owner's cache; the owner's
        // crash wipes it — the *completed* write is lost.
        f.crash(MachineId(1));
        f.recover(MachineId(1));
        assert_eq!(reg.read(&node).unwrap(), 0);
    }

    #[test]
    fn cas_through_register() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        assert_eq!(reg.cas(&node, 0, 1).unwrap(), Ok(0));
        assert_eq!(reg.cas(&node, 0, 2).unwrap(), Err(1));
    }

    #[test]
    fn attach_reuses_cell() {
        let (f, reg) = setup(Arc::new(FlitCxl0::default()));
        let node = f.node(MachineId(0));
        reg.write(&node, 42).unwrap();
        let reg2 = DurableRegister::attach(reg.cell(), Arc::new(FlitCxl0::default()));
        assert_eq!(reg2.read(&node).unwrap(), 42);
    }
}
