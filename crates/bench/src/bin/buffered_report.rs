//! E12 regenerator: buffered durability (§8) — sync-interval sweep.
//!
//! `BufferedEpoch` amortizes persistence: flagged stores are plain local
//! stores, and one ping-pong snapshot `sync` every `k` operations commits
//! them. The sweep shows the throughput/durability-window tradeoff against
//! the strict baselines (`flit-cxl0`, `naive-mstore`): larger intervals
//! approach the no-durability floor, at the price of up to `k-1` completed
//! operations rolled back by a crash. Strategies are selected with
//! [`PersistMode`] — switching durability is cluster configuration, not a
//! type change.
//!
//! Run: `cargo run -p cxl0-bench --bin buffered_report --release`

use cxl0_bench::bench_cluster;
use cxl0_model::MachineId;
use cxl0_runtime::api::PersistMode;
use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};

const OPS: usize = 20_000;

struct Row {
    label: String,
    sim_ns_per_op: f64,
    flushes_per_op: f64,
    mstores_per_op: f64,
    at_risk: String,
}

fn run(label: &str, mode: PersistMode, at_risk: &str) -> Row {
    let cluster = bench_cluster(1 << 18, mode);
    let map = cluster
        .session(MachineId(0))
        .create_map::<u64, u64>("bench/map", 1024)
        .expect("heap fits the map");
    let session = cluster.session(MachineId(0)); // measurement window
    let mut w = Workload::new(KeyDist::zipfian(512, 0.99), OpMix::update_heavy(), 42);
    for op in w.take_ops(OPS) {
        match op {
            WorkloadOp::Read(k) => {
                map.get(&session, k).unwrap();
            }
            WorkloadOp::Insert(k, v) => {
                map.insert(&session, k, v).unwrap();
            }
            WorkloadOp::Remove(k) => {
                map.remove(&session, k).unwrap();
            }
        }
    }
    let s = session.stats_delta();
    Row {
        label: label.to_string(),
        sim_ns_per_op: s.sim_ns as f64 / OPS as f64,
        flushes_per_op: s.flushes() as f64 / OPS as f64,
        mstores_per_op: s.mstores as f64 / OPS as f64,
        at_risk: at_risk.to_string(),
    }
}

fn main() {
    println!("buffered durability sweep: {OPS} map ops, zipfian(512, 0.99), 50/50 read/insert\n");
    println!(
        "{:<22} {:>12} {:>10} {:>11} {:>16}",
        "strategy", "sim ns/op", "flush/op", "mstore/op", "ops at risk"
    );

    let mut rows = Vec::new();
    rows.push(run("none (not durable)", PersistMode::None, "all"));
    for interval in [1usize, 4, 16, 64, 256] {
        rows.push(run(
            &format!("buffered (sync={interval})"),
            PersistMode::Buffered {
                capacity: 8192,
                sync_interval: interval,
            },
            &format!("≤ {}", interval.saturating_sub(1)),
        ));
    }
    rows.push(run("flit-cxl0", PersistMode::FlitCxl0, "0"));
    rows.push(run("naive-mstore", PersistMode::NaiveMStore, "0"));

    for r in &rows {
        println!(
            "{:<22} {:>12.1} {:>10.2} {:>11.2} {:>16}",
            r.label, r.sim_ns_per_op, r.flushes_per_op, r.mstores_per_op, r.at_risk
        );
    }

    println!("\nnotes:");
    println!("  * 'ops at risk' = completed operations a crash may roll back (buffered durable");
    println!("    linearizability; the recovery state is always a consistent cut — see");
    println!("    tests/buffered_durability.rs for the checker evidence).");
    println!("  * sync=1 persists every op like FliT but pays log-entry + barrier + commit per");
    println!("    op: strictness without FliT's per-location precision costs ~2x.");
    println!("  * the crossover vs flit-cxl0 sits around sync=16 in this cost model: the redo");
    println!("    log dedups hot cells (zipfian absorption) and its write-backs overlap under");
    println!("    one CXL0_AF barrier instead of paying a full RFlush round trip each.");
    println!("  * large intervals converge toward the 'none' floor: durability amortized to ~0.");
}
