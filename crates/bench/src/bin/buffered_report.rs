//! E12 regenerator: buffered durability (§8) — sync-interval sweep.
//!
//! `BufferedEpoch` amortizes persistence: flagged stores are plain local
//! stores, and one ping-pong snapshot `sync` every `k` operations commits
//! them. The sweep shows the throughput/durability-window tradeoff against
//! the strict baselines (`flit-cxl0`, `naive-mstore`): larger intervals
//! approach the no-durability floor, at the price of up to `k-1` completed
//! operations rolled back by a crash.
//!
//! Run: `cargo run -p cxl0-bench --bin buffered_report --release`

use std::sync::Arc;

use cxl0_bench::MEM_NODE;
use cxl0_model::{MachineId, SystemConfig};
use cxl0_runtime::{
    BufferedEpoch, DurableMap, FlitCxl0, NaiveMStore, NoPersistence, Persistence, SharedHeap,
    SimFabric,
};
use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};

const OPS: usize = 20_000;

struct Row {
    label: String,
    sim_ns_per_op: f64,
    flushes_per_op: f64,
    mstores_per_op: f64,
    at_risk: String,
}

fn run(
    label: &str,
    strategy: Arc<dyn Persistence>,
    heap: &Arc<SharedHeap>,
    fabric: &Arc<SimFabric>,
    at_risk: &str,
) -> Row {
    let map = DurableMap::create(heap, 1024, strategy).expect("heap fits the map");
    let node = fabric.node(MachineId(0));
    let mut w = Workload::new(KeyDist::zipfian(512, 0.99), OpMix::update_heavy(), 42);
    let before = fabric.stats().snapshot();
    for op in w.take_ops(OPS) {
        match op {
            WorkloadOp::Read(k) => {
                map.get(&node, k).unwrap();
            }
            WorkloadOp::Insert(k, v) => {
                map.insert(&node, k, v).unwrap();
            }
            WorkloadOp::Remove(k) => {
                map.remove(&node, k).unwrap();
            }
        }
    }
    let s = fabric.stats().snapshot().since(&before);
    Row {
        label: label.to_string(),
        sim_ns_per_op: s.sim_ns as f64 / OPS as f64,
        flushes_per_op: s.flushes() as f64 / OPS as f64,
        mstores_per_op: s.mstores as f64 / OPS as f64,
        at_risk: at_risk.to_string(),
    }
}

fn fresh() -> (Arc<SimFabric>, Arc<SharedHeap>) {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 18));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM_NODE));
    (fabric, heap)
}

fn main() {
    println!("buffered durability sweep: {OPS} map ops, zipfian(512, 0.99), 50/50 read/insert\n");
    println!(
        "{:<22} {:>12} {:>10} {:>11} {:>16}",
        "strategy", "sim ns/op", "flush/op", "mstore/op", "ops at risk"
    );

    let mut rows = Vec::new();
    {
        let (fabric, heap) = fresh();
        rows.push(run(
            "none (not durable)",
            Arc::new(NoPersistence),
            &heap,
            &fabric,
            "all",
        ));
    }
    for interval in [1usize, 4, 16, 64, 256] {
        let (fabric, heap) = fresh();
        let b = Arc::new(BufferedEpoch::create(&heap, 8192, interval).expect("heap fits"));
        rows.push(run(
            &format!("buffered (sync={interval})"),
            b,
            &heap,
            &fabric,
            &format!("≤ {}", interval.saturating_sub(1)),
        ));
    }
    {
        let (fabric, heap) = fresh();
        rows.push(run(
            "flit-cxl0",
            Arc::new(FlitCxl0::default()),
            &heap,
            &fabric,
            "0",
        ));
    }
    {
        let (fabric, heap) = fresh();
        rows.push(run(
            "naive-mstore",
            Arc::new(NaiveMStore),
            &heap,
            &fabric,
            "0",
        ));
    }

    for r in &rows {
        println!(
            "{:<22} {:>12.1} {:>10.2} {:>11.2} {:>16}",
            r.label, r.sim_ns_per_op, r.flushes_per_op, r.mstores_per_op, r.at_risk
        );
    }

    println!("\nnotes:");
    println!("  * 'ops at risk' = completed operations a crash may roll back (buffered durable");
    println!("    linearizability; the recovery state is always a consistent cut — see");
    println!("    tests/buffered_durability.rs for the checker evidence).");
    println!("  * sync=1 persists every op like FliT but pays log-entry + barrier + commit per");
    println!("    op: strictness without FliT's per-location precision costs ~2x.");
    println!("  * the crossover vs flit-cxl0 sits around sync=16 in this cost model: the redo");
    println!("    log dedups hot cells (zipfian absorption) and its write-backs overlap under");
    println!("    one CXL0_AF barrier instead of paying a full RFlush round trip each.");
    println!("  * large intervals converge toward the 'none' floor: durability amortized to ~0.");
}
