//! E4 regenerator: prints Table 1 from the protocol engine and diffs it
//! against the paper's published cells.
//!
//! Run: `cargo run -p cxl0-bench --bin table1`

use cxl0_protocol::{expected_paper_cells, generate_table1};

fn main() {
    let (table, analyzer) = generate_table1();
    println!("{}", table.to_text());
    println!(
        "analyzer: {} operations observed, {} transactions on the link\n",
        analyzer.observations().len(),
        analyzer.total_transactions()
    );

    let expected = expected_paper_cells();
    let mut mismatches = 0;
    for (key, want) in &expected {
        let got = &table.cells[key];
        if got != want {
            mismatches += 1;
            println!(
                "MISMATCH {key:?}: generated `{}` but the paper reports `{}`",
                got.render(),
                want.render()
            );
        }
    }
    if mismatches == 0 {
        println!("all {} cells match the paper's Table 1", expected.len());
    }
    std::process::exit(if mismatches == 0 { 0 } else { 1 });
}
