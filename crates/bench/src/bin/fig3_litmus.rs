//! E1/E6 regenerator: prints the Figure-3 litmus table (tests 1–9) and
//! the §6 motivating example (test 13) with computed vs. paper verdicts.
//!
//! Run: `cargo run -p cxl0-bench --bin fig3_litmus`

use cxl0_explore::litmus::run_suite;
use cxl0_explore::paper;
use cxl0_model::ModelVariant;

fn main() {
    println!("Figure 3: Litmus tests for CXL0\n");
    println!("{:<9} {:<8} {:<8}  trace", "test", "paper", "computed");
    println!("{:-<9} {:-<8} {:-<8}  {:-<60}", "", "", "", "");
    let mut tests = paper::figure3_tests();
    tests.push(paper::motivating_example());
    for t in &tests {
        let expected = t.expected_for(ModelVariant::Base).unwrap();
        let computed = t.run(ModelVariant::Base);
        println!("{:<9} {:<8} {:<8}  {}", t.name, expected, computed, t.trace);
    }
    let report = run_suite(&tests);
    println!("\n{report}");
    std::process::exit(if report.all_pass() { 0 } else { 1 });
}
