//! E3 regenerator: checks all eight items of Proposition 1 exhaustively
//! over the reachable state spaces of three configurations and prints a
//! report (the paper proves these in Rocq).
//!
//! Run: `cargo run -p cxl0-bench --bin prop1 --release`

use cxl0_explore::check_proposition1;
use cxl0_model::{MachineConfig, Semantics, SystemConfig, Val};

fn main() {
    // Budgets cap the explored prefix of each reachable space. The 1-loc
    // configurations close out well under their caps (full reachable
    // sets); the 2-loc space explodes combinatorially and every explored
    // state is checked for all 8 items, so its cap keeps the harness to
    // minutes rather than hours.
    let configs: Vec<(&str, SystemConfig, usize)> = vec![
        (
            "2 machines, NVM ×1 loc",
            SystemConfig::symmetric_nvm(2, 1),
            500_000,
        ),
        (
            "NVM + volatile machine",
            SystemConfig::new(vec![
                MachineConfig::non_volatile(1),
                MachineConfig::volatile(1),
            ]),
            500_000,
        ),
        (
            "2 machines, NVM ×2 locs",
            SystemConfig::symmetric_nvm(2, 2),
            20_000,
        ),
    ];
    let mut ok = true;
    for (name, cfg, budget) in configs {
        println!("configuration: {name} (≤ {budget} states)");
        let sem = Semantics::new(cfg);
        match check_proposition1(&sem, &[Val(0), Val(1)], budget) {
            Ok(results) => {
                for (item, checked) in results {
                    println!("  PASS ({checked:>6} instantiations)  {item}");
                }
            }
            Err(ce) => {
                ok = false;
                println!("  FAIL: {ce}");
            }
        }
        println!();
    }
    std::process::exit(if ok { 0 } else { 1 });
}
