//! E11 regenerator: the `CXL0_AF` asynchronous-flush extension — batching
//! sweep comparing deferred helping (`flit-async`) against synchronous
//! helping (`flit-cxl0`).
//!
//! An operation reads `k` cells whose FliT counters are positive (in-flight
//! writers), then completes. `flit-cxl0` pays one synchronous `RFlush` per
//! helped read; `flit-async` enqueues `k` `AFlush`es and retires them,
//! overlapped, under one `Barrier` in `completeOp`. The crossover shows
//! where asynchronous flushes start paying off.
//!
//! Run: `cargo run -p cxl0-bench --bin async_report --release`

use std::sync::Arc;

use cxl0_bench::bench_cluster;
use cxl0_model::{Loc, MachineId};
use cxl0_runtime::api::PersistMode;
use cxl0_runtime::{FlitAsync, FlitCxl0, Persistence};

const OPS: usize = 2_000;

fn run(k: usize, strategy: Arc<dyn Persistence>, raise: impl Fn(Loc)) -> (f64, f64, f64) {
    // The cluster supplies fabric + heap; the strategies under test are
    // concrete (their raise_counter hooks are not on the trait).
    let cluster = bench_cluster(1 << 12, PersistMode::None);
    let cells: Vec<Loc> = (0..k)
        .map(|_| cluster.heap().alloc(1).expect("heap fits"))
        .collect();
    for &c in &cells {
        raise(c);
    }
    let session = cluster.session(MachineId(0));
    for _ in 0..OPS {
        for &c in &cells {
            strategy.shared_load(session.node(), c, true).unwrap();
        }
        strategy.complete_op(session.node()).unwrap();
    }
    let s = session.stats_delta();
    (
        s.sim_ns as f64 / OPS as f64,
        s.flushes() as f64 / OPS as f64,
        s.aflushes as f64 / OPS as f64,
    )
}

fn main() {
    println!("CXL0_AF batching sweep: k helped reads per operation, {OPS} ops\n");
    println!(
        "{:>3} {:>16} {:>16} {:>9} {:>10} {:>10}",
        "k", "sync ns/op", "async ns/op", "speedup", "rflush/op", "aflush/op"
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let sync = Arc::new(FlitCxl0::default());
        let (sync_ns, sync_flush, _) = run(k, Arc::clone(&sync) as _, |c| sync.raise_counter(c));
        let asy = Arc::new(FlitAsync::default());
        let (async_ns, _, async_af) = run(k, Arc::clone(&asy) as _, |c| asy.raise_counter(c));
        println!(
            "{:>3} {:>16.1} {:>16.1} {:>8.2}x {:>10.2} {:>10.2}",
            k,
            sync_ns,
            async_ns,
            sync_ns / async_ns,
            sync_flush,
            async_af
        );
    }
    println!("\nnotes:");
    println!("  * sync = flit-cxl0 (Alg. 2): each helped read issues a synchronous RFlush.");
    println!("  * async = flit-async (Alg. 1 on CXL0_AF): helped reads enqueue AFlush requests;");
    println!("    completeOp's Barrier retires them with overlapped write-backs.");
    println!("  * speedup grows with k: one full write-back latency is paid per *operation*,");
    println!("    not per helped line.");
}
