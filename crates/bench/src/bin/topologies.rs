//! E9 regenerator: prints the §4 capability matrix — which CXL0
//! primitives each deployment topology grants to each machine role.
//!
//! Run: `cargo run -p cxl0-bench --bin topologies`

use cxl0_model::{MachineId, Primitive, Topology};

fn main() {
    let topologies = [
        Topology::host_device_pair(),
        Topology::partitioned_pool(2),
        Topology::shared_pool_coherent(2),
        Topology::shared_pool_noncoherent(2),
        Topology::unrestricted(2),
    ];
    print!("{:<26}", "topology / machine");
    for p in Primitive::ISSUED {
        print!(" {:>7}", p.to_string());
    }
    println!(" {:>7}", "PropC-C");
    for t in &topologies {
        for m in 0..t.num_machines() {
            print!("{:<26}", format!("{} m{}", t.name(), m));
            for p in Primitive::ISSUED {
                print!(
                    " {:>7}",
                    if t.allows(MachineId(m), p) {
                        "✓"
                    } else {
                        "—"
                    }
                );
            }
            println!(" {:>7}", if t.allows_prop_cc() { "✓" } else { "—" });
        }
    }
    println!("\n(✓ = primitive available, — = excluded per §4; PropC-C = cache-to-cache propagation in the fabric)");
}
