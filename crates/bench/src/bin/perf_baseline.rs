//! `perf_baseline` — the recorded multi-threaded performance baseline of
//! the executable backend (`BENCH_fabric.json`).
//!
//! Two sweeps, each at 1/2/4/8 threads spread round-robin over the
//! compute nodes:
//!
//! * **primitive sweep** — raw [`SimFabric`] primitives (store / load /
//!   flush / RMW / async-flush mix) on per-thread disjoint location
//!   blocks of the memory node, measuring fabric overhead rather than
//!   data-structure contention;
//! * **queue sweep** — enqueue/dequeue pairs on one shared
//!   `DurableQueue`, once per [`PersistMode`], measuring the end-to-end
//!   programming-model hot path under real contention.
//!
//! Every row reports wall-clock throughput (`mops_per_sec`, the number a
//! scalability change must move) and simulated cost (`sim_ns_per_op`,
//! the number that must **not** move — the cost model is semantics).
//!
//! With `--churn` a third sweep runs: an alloc/free-heavy
//! enqueue/dequeue mix (the `cxl0-workloads` `alloc_churn` preset) on a
//! deliberately small region, reporting allocator behavior (free-list
//! hit rate, high-water cells) alongside throughput — the row that
//! catches allocator regressions in the perf trajectory.
//!
//! With `--combined` a fourth sweep runs: plain vs flat-combining
//! fronts (`cxl0::ds::combine`) on one shared queue *and* one shared
//! stack per `PersistMode`, same thread counts — the rows that record
//! the batched-persistence win, with the combiner's batch/elimination
//! counters attached to each combined row.
//!
//! With `--latency` a fifth sweep runs: the 8-thread queue pair
//! workload per `PersistMode` on a **traced** cluster
//! (`cxl0::trace`), reporting per-op p50/p99/p999 in simulated
//! nanoseconds from the tracer's log2 histograms — distribution tails
//! where the throughput sweeps only see means — followed by a crash of
//! the memory node and a timed `recover_roots`, recording wall
//! recovery time and the per-phase breakdown (buffered replay /
//! allocator sweep / SMR drain / registry seal).
//!
//! ```text
//! perf_baseline [--quick] [--churn] [--combined] [--latency] [--out PATH] [--label NAME] [--baseline PATH]
//! ```
//!
//! `--baseline` embeds a previous run's JSON verbatim under `"baseline"`
//! and, when that run carries a `primitive_8t_mops` summary, reports the
//! 8-thread primitive speedup against it — this is how the committed
//! `BENCH_fabric.json` records before/after across a backend change.
//!
//! Timing discipline: every row's cluster, structure and per-worker
//! sessions are built **once**, before any timed region; repetitions
//! reuse the same persistent workers behind a barrier pair, so
//! plain-vs-combined deltas measure the hot path, not setup cost.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use cxl0_bench::{bench_cluster, bench_cluster_traced, MEM_NODE};
use cxl0_model::{Loc, MachineId, StoreKind, SystemConfig};
use cxl0_runtime::api::{Cluster, PersistMode};
use cxl0_runtime::{AllocStats, OpKind, PhaseTiming, SimFabric, StatsSnapshot};
use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};

/// Thread counts of the sweep, per the ISSUE: 1/2/4/8.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Disjoint memory-node locations given to each primitive-sweep thread.
const LOCS_PER_THREAD: u32 = 64;

struct Options {
    quick: bool,
    churn: bool,
    combined: bool,
    latency: bool,
    out: String,
    label: String,
    baseline: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        churn: false,
        combined: false,
        latency: false,
        out: "BENCH_fabric.json".to_string(),
        label: "run".to_string(),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--churn" => opts.churn = true,
            "--combined" => opts.combined = true,
            "--latency" => opts.latency = true,
            "--out" => opts.out = args.next().expect("--out takes a path"),
            "--label" => {
                let label = args.next().expect("--label takes a name");
                // The label is interpolated into the JSON output verbatim.
                assert!(
                    !label.contains(['"', '\\']) && !label.chars().any(char::is_control),
                    "--label must not contain quotes, backslashes or control characters"
                );
                opts.label = label;
            }
            "--baseline" => opts.baseline = Some(args.next().expect("--baseline takes a path")),
            other => {
                panic!(
                    "unknown argument {other:?} (try --quick/--churn/--combined/--latency/--out/--label/--baseline)"
                )
            }
        }
    }
    opts
}

/// One measured row of any sweep.
struct Row {
    mode: String,
    threads: usize,
    ops: u64,
    wall_ns: u64,
    /// Exact simulated-time total for the row — deterministic for
    /// single-threaded rows, so before/after files must agree bit-for-bit
    /// there (the cost model is semantics, not performance).
    sim_ns: u64,
    sim_ns_per_op: f64,
    /// Extra JSON fields (already `,`-prefixed), e.g. the combined
    /// sweep's batch counters. Empty for most rows.
    extra: String,
}

impl Row {
    fn mops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e3 / self.wall_ns as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"threads\":{},\"ops\":{},\"wall_ns\":{},\"mops_per_sec\":{:.3},\"sim_ns\":{},\"sim_ns_per_op\":{:.3}{}}}",
            self.mode,
            self.threads,
            self.ops,
            self.wall_ns,
            self.mops_per_sec(),
            self.sim_ns,
            self.sim_ns_per_op,
            self.extra
        )
    }
}

/// The primitive mix one sweep unit issues: a representative blend of
/// store strengths, loads, flushes and an RMW, plus an async flush whose
/// barrier retires every 8 units. 8 primitives per unit + amortized
/// barriers.
const PRIMS_PER_UNIT: u64 = 8;
const BARRIER_EVERY: u64 = 8;

/// What each worker reports: its own start/end instants (the driver may
/// be descheduled around the start barrier, so aggregate wall time is
/// `max(end) - min(start)` across workers) and the ops it issued.
#[derive(Clone, Copy)]
struct WorkerReport {
    start: Instant,
    end: Instant,
    ops: u64,
}

fn wall_and_ops(reports: Vec<WorkerReport>) -> (u64, u64) {
    let start = reports.iter().map(|r| r.start).min().expect("nonempty");
    let end = reports.iter().map(|r| r.end).max().expect("nonempty");
    let ops = reports.iter().map(|r| r.ops).sum();
    (end.duration_since(start).as_nanos() as u64, ops)
}

fn primitive_worker(
    fabric: Arc<SimFabric>,
    machine: MachineId,
    base: u32,
    units: u64,
) -> impl FnOnce() -> u64 {
    move || {
        let node = fabric.node(machine);
        let span = LOCS_PER_THREAD;
        let mut issued = 0u64;
        for i in 0..units {
            let a = Loc::new(MEM_NODE, base + (i % u64::from(span)) as u32);
            let b = Loc::new(MEM_NODE, base + ((i + 7) % u64::from(span)) as u32);
            node.lstore(a, i).unwrap();
            node.load(a).unwrap();
            node.lflush(a).unwrap();
            node.rflush(a).unwrap();
            node.mstore(b, i).unwrap();
            node.load(b).unwrap();
            node.faa(StoreKind::Memory, b, 1).unwrap();
            node.aflush(a).unwrap();
            issued += PRIMS_PER_UNIT;
            if i % BARRIER_EVERY == BARRIER_EVERY - 1 {
                node.barrier().unwrap();
                issued += 1;
            }
        }
        issued
    }
}

/// Runs one primitive-sweep row: `threads` workers on round-robin
/// compute machines, each over a disjoint location block.
fn primitive_row(threads: usize, units: u64) -> Row {
    // 2 compute nodes + the memory node, as everywhere in cxl0-bench.
    let cells = 8 * LOCS_PER_THREAD; // enough disjoint blocks for 8 threads
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, cells));
    let start_gate = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let worker = primitive_worker(
            Arc::clone(&fabric),
            MachineId(t % 2),
            t as u32 * LOCS_PER_THREAD,
            units,
        );
        let gate = Arc::clone(&start_gate);
        handles.push(std::thread::spawn(move || {
            gate.wait();
            let start = Instant::now();
            let ops = worker();
            WorkerReport {
                start,
                end: Instant::now(),
                ops,
            }
        }));
    }
    let before = fabric.stats().snapshot();
    start_gate.wait();
    let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let (wall_ns, ops) = wall_and_ops(reports);
    let delta = fabric.stats().snapshot().since(&before);
    assert_eq!(
        delta.total_ops(),
        ops,
        "fabric counters must aggregate exactly to the issued op count"
    );
    Row {
        mode: "primitives".to_string(),
        threads,
        ops,
        wall_ns,
        sim_ns: delta.sim_ns,
        sim_ns_per_op: delta.sim_ns as f64 / ops as f64,
        extra: String::new(),
    }
}

/// Drives one structure-sweep row with persistent workers: per-worker
/// state (session, structure handle) is built by `make_work` **once**,
/// before any timed region; each of the `reps` repetitions is gated by
/// a barrier pair and timed separately, and the fastest rep is
/// reported. This keeps session/cluster setup entirely out of the
/// numbers, so plain-vs-combined deltas compare hot paths only.
fn structure_row(
    mode: String,
    threads: usize,
    reps: u64,
    cluster: &Arc<Cluster>,
    make_work: &mut dyn FnMut(usize) -> Box<dyn FnMut() -> u64 + Send>,
) -> Row {
    let gate = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let mut work = make_work(t);
        let gate = Arc::clone(&gate);
        handles.push(std::thread::spawn(move || {
            let mut reports = Vec::with_capacity(reps as usize);
            for _ in 0..reps {
                gate.wait();
                let start = Instant::now();
                let ops = work();
                reports.push(WorkerReport {
                    start,
                    end: Instant::now(),
                    ops,
                });
                gate.wait();
            }
            reports
        }));
    }
    let mut deltas: Vec<StatsSnapshot> = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let before = cluster.stats_snapshot();
        gate.wait(); // release the workers into the timed region
        gate.wait(); // wait for every worker to finish the rep
        deltas.push(cluster.stats_snapshot().since(&before));
    }
    let per_thread: Vec<Vec<WorkerReport>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut best: Option<(u64, u64, StatsSnapshot)> = None;
    for (rep, delta) in deltas.iter().enumerate() {
        let (wall_ns, ops) = wall_and_ops(per_thread.iter().map(|v| v[rep]).collect());
        match &best {
            Some((best_wall, best_ops, _)) => {
                assert_eq!(ops, *best_ops, "repetitions issue identical op counts");
                if wall_ns < *best_wall {
                    best = Some((wall_ns, ops, *delta));
                }
            }
            None => best = Some((wall_ns, ops, *delta)),
        }
    }
    let (wall_ns, ops, delta) = best.expect("at least one rep");
    let extra = if delta.combine_ops > 0 {
        format!(
            ",\"batches\":{},\"ops_per_batch\":{:.2},\"eliminations\":{},\"barriers_saved\":{}",
            delta.combine_batches,
            delta.combine_ops as f64 / delta.combine_batches.max(1) as f64,
            delta.combine_eliminations,
            delta.combine_barriers_saved
        )
    } else {
        String::new()
    };
    Row {
        mode,
        threads,
        ops,
        wall_ns,
        sim_ns: delta.sim_ns,
        sim_ns_per_op: delta.sim_ns as f64 / ops as f64,
        extra,
    }
}

/// Runs one queue-sweep row: `threads` sessions hammering one shared
/// `DurableQueue` with enqueue/dequeue pairs under `mode`.
fn queue_row(mode: PersistMode, threads: usize, pairs: u64, reps: u64) -> Row {
    let cluster = bench_cluster(1 << 18, mode);
    let queue = cluster
        .session(MachineId(0))
        .create_queue::<u64>("perf/queue")
        .expect("heap fits the queue");
    structure_row(
        mode.name().to_string(),
        threads,
        reps,
        &cluster.clone(),
        &mut |t| {
            let session = cluster.session(MachineId(t % 2));
            let queue = queue.clone();
            Box::new(move || {
                for i in 0..pairs {
                    queue.enqueue(&session, i + 1).unwrap();
                    queue.dequeue(&session).unwrap();
                }
                2 * pairs
            })
        },
    )
}

/// Runs one combined-sweep row: plain or combined fronts over one
/// shared queue or stack, same pair workload as the queue sweep.
fn combined_sweep_row(
    kind: &str,
    combined: bool,
    mode: PersistMode,
    threads: usize,
    pairs: u64,
    reps: u64,
) -> Row {
    let cluster = bench_cluster(1 << 18, mode);
    let session0 = cluster.session(MachineId(0));
    let label = format!(
        "{}/{}/{}",
        kind,
        mode.name(),
        if combined { "combined" } else { "plain" }
    );
    let rows = |make: &mut dyn FnMut(usize) -> Box<dyn FnMut() -> u64 + Send>| {
        structure_row(label.clone(), threads, reps, &cluster.clone(), make)
    };
    // Odd threads lead with the remove: threads released by one barrier
    // otherwise run the pair loop in lock step, and an all-insert round
    // followed by an all-remove round is traffic no real workload
    // produces (and the one mix that can never eliminate). Plain and
    // combined rows get the identical stagger.
    match (kind, combined) {
        ("queue", false) => {
            let q = session0.create_queue::<u64>("perf/cmb").expect("heap fits");
            rows(&mut |t| {
                let session = cluster.session(MachineId(t % 2));
                let q = q.clone();
                Box::new(move || {
                    for i in 0..pairs {
                        if t % 2 == 0 {
                            q.enqueue(&session, i + 1).unwrap();
                            q.dequeue(&session).unwrap();
                        } else {
                            q.dequeue(&session).unwrap();
                            q.enqueue(&session, i + 1).unwrap();
                        }
                    }
                    2 * pairs
                })
            })
        }
        ("queue", true) => {
            let q = session0
                .create_queue_combined::<u64>("perf/cmb")
                .expect("heap fits");
            rows(&mut |t| {
                let session = cluster.session(MachineId(t % 2));
                let q = q.clone();
                Box::new(move || {
                    for i in 0..pairs {
                        if t % 2 == 0 {
                            q.enqueue(&session, i + 1).unwrap();
                            q.dequeue(&session).unwrap();
                        } else {
                            q.dequeue(&session).unwrap();
                            q.enqueue(&session, i + 1).unwrap();
                        }
                    }
                    2 * pairs
                })
            })
        }
        ("stack", false) => {
            let s = session0.create_stack::<u64>("perf/cmb").expect("heap fits");
            rows(&mut |t| {
                let session = cluster.session(MachineId(t % 2));
                let s = s.clone();
                Box::new(move || {
                    for i in 0..pairs {
                        if t % 2 == 0 {
                            s.push(&session, i + 1).unwrap();
                            s.pop(&session).unwrap();
                        } else {
                            s.pop(&session).unwrap();
                            s.push(&session, i + 1).unwrap();
                        }
                    }
                    2 * pairs
                })
            })
        }
        ("stack", true) => {
            let s = session0
                .create_stack_combined::<u64>("perf/cmb")
                .expect("heap fits");
            rows(&mut |t| {
                let session = cluster.session(MachineId(t % 2));
                let s = s.clone();
                Box::new(move || {
                    for i in 0..pairs {
                        if t % 2 == 0 {
                            s.push(&session, i + 1).unwrap();
                            s.pop(&session).unwrap();
                        } else {
                            s.pop(&session).unwrap();
                            s.push(&session, i + 1).unwrap();
                        }
                    }
                    2 * pairs
                })
            })
        }
        _ => unreachable!("kind is queue|stack"),
    }
}

/// One measured churn-sweep row: structure throughput plus the
/// allocator counters that make memory behavior part of the perf
/// trajectory and, for traversal structures, the epoch-reclamation
/// (`smr_*`) counters that make grace-period behavior part of it too.
struct ChurnRow {
    row: Row,
    mem: AllocStats,
    smr_pins: u64,
    smr_retires: u64,
    smr_reclaims: u64,
    smr_limbo: u64,
}

impl ChurnRow {
    fn to_json(&self) -> String {
        let hit_rate = self.mem.freelist_hits as f64 / self.mem.allocs.max(1) as f64;
        format!(
            "{{\"mode\":\"{}\",\"threads\":{},\"ops\":{},\"mops_per_sec\":{:.3},\"sim_ns_per_op\":{:.3},\"allocs\":{},\"frees\":{},\"freelist_hits\":{},\"freelist_hit_rate\":{:.3},\"hw_cells\":{},\"smr_pins\":{},\"smr_retires\":{},\"smr_reclaims\":{},\"smr_limbo\":{}}}",
            self.row.mode,
            self.row.threads,
            self.row.ops,
            self.row.mops_per_sec(),
            self.row.sim_ns_per_op,
            self.mem.allocs,
            self.mem.frees,
            self.mem.freelist_hits,
            hit_rate,
            self.mem.hw_cells,
            self.smr_pins,
            self.smr_retires,
            self.smr_reclaims,
            self.smr_limbo,
        )
    }
}

/// Which structure a churn row hammers. The queue reclaims through
/// counted pointers (inline frees, `smr_*` all zero); the sorted list
/// retires through the epoch domain, so its rows are where the `smr_*`
/// counters carry signal (retires ≈ reclaims, bounded limbo).
#[derive(Clone, Copy)]
enum ChurnStructure {
    Queue,
    List,
}

impl ChurnStructure {
    fn label(self, mode: PersistMode) -> String {
        match self {
            // Bare mode name for continuity with earlier baselines.
            ChurnStructure::Queue => mode.name().to_string(),
            ChurnStructure::List => format!("list/{}", mode.name()),
        }
    }
}

/// Runs one churn-sweep row: `threads` sessions driving one shared
/// structure with the balanced alloc-churn mix over a region small
/// enough that only node reclamation sustains the traffic.
fn churn_row(
    structure: ChurnStructure,
    mode: PersistMode,
    threads: usize,
    ops_per_thread: u64,
) -> ChurnRow {
    // Small region: the bump tail alone could never absorb the sweep.
    let cluster = bench_cluster(1 << 14, mode);
    let setup = cluster.session(MachineId(0));
    let queue = setup
        .create_queue::<u64>("perf/churn")
        .expect("heap fits the queue");
    let list = setup
        .create_list::<u64>("perf/churn-list")
        .expect("heap fits the list");
    let start_gate = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let session = cluster.session(MachineId(t % 2));
        let queue = queue.clone();
        let list = list.clone();
        let gate = Arc::clone(&start_gate);
        handles.push(std::thread::spawn(move || {
            let mut w = Workload::new(KeyDist::uniform(1 << 20), OpMix::alloc_churn(), t as u64);
            gate.wait();
            let start = Instant::now();
            let mut ops = 0u64;
            for op in w.take_ops(ops_per_thread as usize) {
                match (structure, op) {
                    (ChurnStructure::Queue, WorkloadOp::Insert(k, _)) => {
                        assert!(
                            queue.enqueue(&session, k).unwrap(),
                            "heap exhausted: node reclamation regressed"
                        );
                    }
                    (ChurnStructure::Queue, WorkloadOp::Remove(_) | WorkloadOp::Read(_)) => {
                        queue.dequeue(&session).unwrap();
                    }
                    // Bounded key space: removals actually hit, so the
                    // list stays small and every op retires or chases
                    // retired nodes — maximum reclamation pressure.
                    (ChurnStructure::List, WorkloadOp::Insert(k, _)) => {
                        list.insert(&session, k % 512 + 1).unwrap();
                    }
                    (ChurnStructure::List, WorkloadOp::Remove(k)) => {
                        list.remove(&session, k % 512 + 1).unwrap();
                    }
                    (ChurnStructure::List, WorkloadOp::Read(k)) => {
                        list.contains(&session, k % 512 + 1).unwrap();
                    }
                }
                ops += 1;
            }
            WorkerReport {
                start,
                end: Instant::now(),
                ops,
            }
        }));
    }
    let before = cluster.stats_snapshot();
    start_gate.wait();
    let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let (wall_ns, ops) = wall_and_ops(reports);
    let delta = cluster.stats_snapshot().since(&before);
    ChurnRow {
        row: Row {
            mode: structure.label(mode),
            threads,
            ops,
            wall_ns,
            sim_ns: delta.sim_ns,
            sim_ns_per_op: delta.sim_ns as f64 / ops as f64,
            extra: String::new(),
        },
        mem: AllocStats {
            allocs: delta.allocs,
            frees: delta.frees,
            freelist_hits: delta.freelist_hits,
            live_cells: delta.live_cells,
            hw_cells: delta.hw_cells,
        },
        smr_pins: delta.smr_pins,
        smr_retires: delta.smr_retires,
        smr_reclaims: delta.smr_reclaims,
        smr_limbo: delta.smr_limbo,
    }
}

/// One per-op latency-distribution row of the `--latency` sweep: tail
/// percentiles in simulated nanoseconds, read off the tracer's log2
/// histograms (bucket upper edges, so each value is a ≤2× bucket-width
/// overestimate — stable and comparable across runs).
struct LatencyRow {
    mode: &'static str,
    op: &'static str,
    samples: u64,
    p50_sim_ns: u64,
    p99_sim_ns: u64,
    p999_sim_ns: u64,
}

impl LatencyRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"op\":\"{}\",\"samples\":{},\"p50_sim_ns\":{},\"p99_sim_ns\":{},\"p999_sim_ns\":{}}}",
            self.mode, self.op, self.samples, self.p50_sim_ns, self.p99_sim_ns, self.p999_sim_ns
        )
    }
}

/// One recovery-telemetry row: wall milliseconds for a full
/// `recover_roots` pass after a memory-node crash, with the tracer's
/// per-phase breakdown.
struct RecoveryRow {
    mode: &'static str,
    recovery_ms: f64,
    phases: Vec<PhaseTiming>,
}

impl RecoveryRow {
    fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|t| {
                format!(
                    "{{\"phase\":\"{}\",\"wall_ns\":{},\"sim_ns\":{}}}",
                    t.phase.name(),
                    t.wall_ns,
                    t.sim_ns
                )
            })
            .collect();
        format!(
            "{{\"mode\":\"{}\",\"recovery_ms\":{:.3},\"phases\":[{}]}}",
            self.mode,
            self.recovery_ms,
            phases.join(",")
        )
    }
}

/// Runs the `--latency` unit for one mode: the 8-thread queue pair
/// workload on a traced cluster (per-op percentile rows), then a
/// memory-node crash and a timed `recover_roots` (recovery row). One
/// run, no best-of-reps: percentiles are whole-distribution statistics
/// and the crash leaves the cluster unfit for another round.
fn latency_unit(mode: PersistMode, pairs: u64) -> (Vec<LatencyRow>, RecoveryRow) {
    const LAT_THREADS: usize = 8;
    let cluster = bench_cluster_traced(1 << 18, mode);
    let queue = cluster
        .session(MachineId(0))
        .create_queue::<u64>("perf/lat")
        .expect("heap fits the queue");
    let gate = Arc::new(Barrier::new(LAT_THREADS + 1));
    let mut handles = Vec::with_capacity(LAT_THREADS);
    for t in 0..LAT_THREADS {
        let session = cluster.session(MachineId(t % 2));
        let queue = queue.clone();
        let gate = Arc::clone(&gate);
        handles.push(std::thread::spawn(move || {
            gate.wait();
            for i in 0..pairs {
                queue.enqueue(&session, i + 1).unwrap();
                queue.dequeue(&session).unwrap();
            }
        }));
    }
    gate.wait();
    for h in handles {
        h.join().unwrap();
    }
    let tracer = cluster.tracer().expect("latency cluster is traced");
    let rows = [OpKind::Enqueue, OpKind::Dequeue]
        .into_iter()
        .map(|kind| {
            let h = tracer.histogram(kind);
            LatencyRow {
                mode: mode.name(),
                op: kind.name(),
                samples: h.count(),
                p50_sim_ns: h.p50(),
                p99_sim_ns: h.p99(),
                p999_sim_ns: h.p999(),
            }
        })
        .collect();

    // Crash the memory node under live durable state (the queue keeps
    // residual elements: the workload leaves it empty, so re-add some)
    // and time the full recovery pass.
    let session = cluster.session(MachineId(0));
    for i in 0..64 {
        queue.enqueue(&session, i + 1).unwrap();
    }
    cluster.crash(MEM_NODE);
    cluster.recover(MEM_NODE);
    let session = cluster.session(MachineId(0));
    let start = Instant::now();
    session.recover_roots().expect("recovery succeeds");
    let recovery_ms = start.elapsed().as_nanos() as f64 / 1e6;
    let recovery = RecoveryRow {
        mode: mode.name(),
        recovery_ms,
        phases: tracer.recovery_breakdown(),
    };
    (rows, recovery)
}

/// Extracts the `"primitive_8t_mops": <number>` summary from a previous
/// run's JSON without a JSON parser (the format is our own).
fn extract_8t_mops(json: &str) -> Option<f64> {
    let key = "\"primitive_8t_mops\":";
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let opts = parse_args();
    let (prim_units, queue_pairs, reps) = if opts.quick {
        (20_000u64, 1_500u64, 1)
    } else {
        (150_000u64, 8_000u64, 3)
    };
    // The canonical strategy lineup. `Buffered` is excluded: it tracks
    // distinct cells and an M&S queue allocates fresh nodes forever, so
    // any fixed capacity is exhausted by a throughput sweep.
    let queue_modes: Vec<PersistMode> = if opts.quick {
        vec![
            PersistMode::None,
            PersistMode::FlitCxl0,
            PersistMode::FlitAsync,
        ]
    } else {
        PersistMode::comparison_set()
    };

    eprintln!(
        "perf_baseline: label={} quick={} churn={} combined={} latency={} (units={prim_units}, pairs={queue_pairs}, reps={reps})",
        opts.label, opts.quick, opts.churn, opts.combined, opts.latency
    );

    // Best-of-`reps` per row: on a busy machine the max is the honest
    // throughput estimate. Only the issued op count is asserted
    // rep-identical; sim_ns is deterministic for single-threaded rows
    // but may vary across reps under contention (failed-CAS retries and
    // concurrent-barrier interleavings charge interleaving-dependent
    // costs).
    let best = |mut run: Box<dyn FnMut() -> Row>| -> Row {
        let mut best = run();
        for _ in 1..reps {
            let next = run();
            assert_eq!(next.ops, best.ops, "repetitions issue identical op counts");
            if next.wall_ns < best.wall_ns {
                best = next;
            }
        }
        best
    };

    let mut primitive_rows = Vec::new();
    for &t in &THREADS {
        let row = best(Box::new(move || primitive_row(t, prim_units)));
        eprintln!(
            "  primitives {}t: {:.2} Mops/s ({} ops, sim {:.1} ns/op)",
            t,
            row.mops_per_sec(),
            row.ops,
            row.sim_ns_per_op
        );
        primitive_rows.push(row);
    }

    let mut queue_rows = Vec::new();
    for &mode in &queue_modes {
        for &t in &THREADS {
            let row = queue_row(mode, t, queue_pairs, reps);
            eprintln!(
                "  queue/{} {}t: {:.3} Mops/s (sim {:.0} ns/op)",
                row.mode,
                t,
                row.mops_per_sec(),
                row.sim_ns_per_op
            );
            queue_rows.push(row);
        }
    }

    // The combined sweep: plain vs flat-combining fronts, queue and
    // stack, per mode. Its headline summary is the 8-thread queue
    // speedup (combined over plain) per mode.
    let mut combined_rows = Vec::new();
    let mut combined_speedups: Vec<(String, f64)> = Vec::new();
    if opts.combined {
        let combined_modes: Vec<PersistMode> = if opts.quick {
            vec![PersistMode::FlitCxl0, PersistMode::FlitAsync]
        } else {
            PersistMode::comparison_set()
        };
        for &mode in &combined_modes {
            for kind in ["queue", "stack"] {
                for &t in &THREADS {
                    for combined in [false, true] {
                        let row = combined_sweep_row(kind, combined, mode, t, queue_pairs, reps);
                        eprintln!(
                            "  {} {}t: {:.3} Mops/s (sim {:.0} ns/op{})",
                            row.mode,
                            t,
                            row.mops_per_sec(),
                            row.sim_ns_per_op,
                            row.extra.replace(['"', ','], " ")
                        );
                        combined_rows.push(row);
                    }
                }
            }
        }
        // The headline metric is simulated fabric time per op — what
        // the simulator exists to measure. (Wall throughput is in every
        // row too, but on a host with few cores it is dominated by the
        // scheduler round-trips announcement waiting costs, not by the
        // fabric traffic the combining front removes.)
        for &mode in &combined_modes {
            let find = |variant: &str| {
                combined_rows
                    .iter()
                    .find(|r| {
                        r.threads == 8 && r.mode == format!("queue/{}/{variant}", mode.name())
                    })
                    .map(|r| (r.sim_ns_per_op, r.mops_per_sec()))
            };
            if let (Some((plain_sim, plain_wall)), Some((comb_sim, comb_wall))) =
                (find("plain"), find("combined"))
            {
                let s = plain_sim / comb_sim.max(f64::EPSILON);
                eprintln!(
                    "  combined 8t queue speedup / {}: {s:.2}x sim time ({plain_sim:.0} -> {comb_sim:.0} sim ns/op; wall {plain_wall:.3} -> {comb_wall:.3} Mops/s)",
                    mode.name()
                );
                combined_speedups.push((mode.name().to_string(), s));
            }
        }
    }

    // The churn sweep at 1/2/4 threads: best-of-reps on throughput is
    // meaningless here (allocator counters differ per rep), so one run
    // per row — the interesting numbers are hit rate and high-water.
    let mut churn_rows = Vec::new();
    if opts.churn {
        let churn_ops: u64 = if opts.quick { 4_000 } else { 24_000 };
        let churn_modes = if opts.quick {
            vec![PersistMode::FlitCxl0]
        } else {
            vec![
                PersistMode::None,
                PersistMode::FlitCxl0,
                PersistMode::FlitAsync,
            ]
        };
        for &mode in &churn_modes {
            for structure in [ChurnStructure::Queue, ChurnStructure::List] {
                for t in [1usize, 2, 4] {
                    let row = churn_row(structure, mode, t, churn_ops);
                    eprintln!(
                        "  churn/{} {}t: {:.3} Mops/s ({:.1}% free-list hits, hw {} cells, {} retires / {} reclaims, limbo {})",
                        row.row.mode,
                        t,
                        row.row.mops_per_sec(),
                        100.0 * row.mem.freelist_hits as f64 / row.mem.allocs.max(1) as f64,
                        row.mem.hw_cells,
                        row.smr_retires,
                        row.smr_reclaims,
                        row.smr_limbo
                    );
                    churn_rows.push(row);
                }
            }
        }
    }

    // The latency sweep: per-mode tail percentiles from the tracer,
    // then a crash + timed recovery pass per mode. Reuses the queue
    // lineup (Buffered is excluded there for the same capacity reason).
    let mut latency_rows = Vec::new();
    let mut recovery_rows = Vec::new();
    if opts.latency {
        for &mode in &queue_modes {
            let (rows, recovery) = latency_unit(mode, queue_pairs);
            for r in &rows {
                eprintln!(
                    "  latency/{}/{}: n={} p50={} p99={} p999={} sim ns",
                    r.mode, r.op, r.samples, r.p50_sim_ns, r.p99_sim_ns, r.p999_sim_ns
                );
            }
            eprintln!(
                "  recovery/{}: {:.3} ms ({})",
                recovery.mode,
                recovery.recovery_ms,
                recovery
                    .phases
                    .iter()
                    .map(|t| format!("{} {} sim ns", t.phase.name(), t.sim_ns))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            latency_rows.extend(rows);
            recovery_rows.push(recovery);
        }
    }

    let prim_8t = primitive_rows
        .iter()
        .find(|r| r.threads == 8)
        .expect("8-thread row is part of the sweep");
    let baseline_raw = opts.baseline.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });
    let speedup = baseline_raw
        .as_deref()
        .and_then(extract_8t_mops)
        .map(|before| prim_8t.mops_per_sec() / before);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"cxl0-perf-baseline/v1\",\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", opts.label));
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str(&format!(
        "  \"prim_units_per_thread\": {prim_units},\n  \"queue_pairs_per_thread\": {queue_pairs},\n"
    ));
    json.push_str(&format!(
        "  \"primitive_8t_mops\": {:.3},\n",
        prim_8t.mops_per_sec()
    ));
    if let Some(s) = speedup {
        json.push_str(&format!(
            "  \"primitive_8t_speedup_vs_baseline\": {s:.3},\n"
        ));
    }
    json.push_str("  \"primitive_sweep\": [\n");
    let rows: Vec<String> = primitive_rows
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n  \"queue_sweep\": [\n");
    let rows: Vec<String> = queue_rows
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]");
    if !combined_rows.is_empty() {
        json.push_str(",\n  \"combined_8t_queue_speedup\": {");
        let entries: Vec<String> = combined_speedups
            .iter()
            .map(|(mode, s)| format!("\"{mode}\":{s:.3}"))
            .collect();
        json.push_str(&entries.join(","));
        json.push_str("},\n  \"combined_sweep\": [\n");
        let rows: Vec<String> = combined_rows
            .iter()
            .map(|r| format!("    {}", r.to_json()))
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ]");
    }
    if !churn_rows.is_empty() {
        json.push_str(",\n  \"churn_sweep\": [\n");
        let rows: Vec<String> = churn_rows
            .iter()
            .map(|r| format!("    {}", r.to_json()))
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ]");
    }
    if !latency_rows.is_empty() {
        json.push_str(",\n  \"latency_sweep\": [\n");
        let rows: Vec<String> = latency_rows
            .iter()
            .map(|r| format!("    {}", r.to_json()))
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ],\n  \"recovery_breakdown\": [\n");
        let rows: Vec<String> = recovery_rows
            .iter()
            .map(|r| format!("    {}", r.to_json()))
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ]");
    }
    if let Some(raw) = &baseline_raw {
        json.push_str(",\n  \"baseline\": ");
        json.push_str(raw.trim());
    }
    json.push_str("\n}\n");

    std::fs::write(&opts.out, &json).expect("write output JSON");
    eprintln!("perf_baseline: wrote {}", opts.out);
    if let Some(s) = speedup {
        eprintln!("perf_baseline: 8-thread primitive speedup vs baseline = {s:.2}x");
    }
}
