//! E10 regenerator: checks the §3.5 refinement claims with the bounded
//! trace-refinement engine and prints the distinguishing traces it finds
//! (the automated analogue of the paper's FDR4 runs).
//!
//! Run: `cargo run -p cxl0-bench --bin refine --release`

use cxl0_explore::{check_refinement, AlphabetBuilder, Refinement};
use cxl0_model::{MachineConfig, ModelVariant, Primitive, Semantics, SystemConfig, Val};

fn main() {
    // §3.5's configuration: machine 1 NVMM, machine 2 volatile.
    let cfg = SystemConfig::new(vec![
        MachineConfig::non_volatile(1),
        MachineConfig::volatile(1),
    ]);
    let alphabet = AlphabetBuilder::new(&cfg)
        .values([Val(0), Val(1)])
        .primitives([
            Primitive::LStore,
            Primitive::RStore,
            Primitive::Load,
            Primitive::Crash,
        ])
        .build();
    println!(
        "alphabet: {} labels over 2 machines × 1 location × values {{0,1}}; depth 5\n",
        alphabet.len()
    );

    let sem = |v| Semantics::with_variant(cfg.clone(), v);
    let pairs = [
        (ModelVariant::Psn, ModelVariant::Base),
        (ModelVariant::Lwb, ModelVariant::Base),
        (ModelVariant::Base, ModelVariant::Psn),
        (ModelVariant::Base, ModelVariant::Lwb),
        (ModelVariant::Psn, ModelVariant::Lwb),
        (ModelVariant::Lwb, ModelVariant::Psn),
    ];
    for (a, b) in pairs {
        match check_refinement(&sem(a), &sem(b), &alphabet, 5) {
            Refinement::HoldsUpToDepth(d) => {
                let scope = if d == usize::MAX {
                    "all depths (fixpoint)".to_string()
                } else {
                    format!("depth ≤ {d}")
                };
                println!("{a} ⊑ {b}   holds for {scope}");
            }
            Refinement::CounterExample(t) => {
                println!("{a} ⋢ {b}   witness: {t}");
            }
        }
    }
    println!("\nexpected: variants refine CXL0; CXL0 refines neither; PSN and LWB incomparable.");
}
