//! E5 regenerator: prints Figure 5 (median latency of each CXL0
//! primitive over the five access paths, 1000 samples each) and the key
//! ratios the paper reports, with the paper's values alongside.
//!
//! Run: `cargo run -p cxl0-bench --bin fig5`

use cxl0_fabric::{run_figure5, AccessPath, LatencyConfig};
use cxl0_protocol::CxlOp;

fn main() {
    let fig = run_figure5(&LatencyConfig::testbed(), 1000, 42);
    println!("{fig}");

    let m = |p, o| fig.median(p, o).unwrap() as f64;
    println!("shape checks (simulated vs paper):");
    println!(
        "  host remote/local Read      {:.2}x   (paper: 2.34x)",
        m(AccessPath::HostToHdm, CxlOp::Read) / m(AccessPath::HostToHm, CxlOp::Read)
    );
    println!(
        "  device remote/local Read    {:.2}x   (paper: 1.94x)",
        m(AccessPath::DeviceToHm, CxlOp::Read) / m(AccessPath::DeviceToHdmDeviceBias, CxlOp::Read)
    );
    println!(
        "  device→HM RStore/LStore     {:.2}x   (paper: 2.08x)",
        m(AccessPath::DeviceToHm, CxlOp::RStore) / m(AccessPath::DeviceToHm, CxlOp::LStore)
    );
    println!(
        "  device→HM MStore/RStore     {:.2}x   (paper: 1.45x)",
        m(AccessPath::DeviceToHm, CxlOp::MStore) / m(AccessPath::DeviceToHm, CxlOp::RStore)
    );
    println!(
        "  host→HDM vs device→HM Read  {:.2}x   (paper: ~1.07x, 'same latency')",
        m(AccessPath::DeviceToHm, CxlOp::Read) / m(AccessPath::HostToHdm, CxlOp::Read)
    );
    println!(
        "  RFlush/MStore (host→HM)     {:.2}x   (paper: ~1.0x)",
        m(AccessPath::HostToHm, CxlOp::RFlush) / m(AccessPath::HostToHm, CxlOp::MStore)
    );
    println!(
        "  not-measurable cells        {}      (paper: 7)",
        fig.not_measurable()
    );
}
