//! E2 regenerator: prints §3.5's tests 10–12 with their verdict triples
//! (CXL0, CXL0_LWB, CXL0_PSN), computed vs. paper.
//!
//! Run: `cargo run -p cxl0-bench --bin variants`

use cxl0_explore::litmus::run_suite;
use cxl0_explore::paper;
use cxl0_model::ModelVariant;

fn main() {
    println!("§3.5: model-variant comparison — verdicts as (CXL0, CXL0_LWB, CXL0_PSN)\n");
    let order = [ModelVariant::Base, ModelVariant::Lwb, ModelVariant::Psn];
    for t in paper::variant_tests() {
        let paper_triple: Vec<String> = order
            .iter()
            .map(|&v| t.expected_for(v).unwrap().symbol().to_string())
            .collect();
        let computed: Vec<String> = order
            .iter()
            .map(|&v| t.run(v).symbol().to_string())
            .collect();
        println!(
            "{}  paper ({})  computed ({})",
            t.name,
            paper_triple.join(","),
            computed.join(",")
        );
        println!("         {}", t.trace);
        println!("         {}\n", t.description);
    }
    let report = run_suite(&paper::variant_tests());
    println!("{report}");
    std::process::exit(if report.all_pass() { 0 } else { 1 });
}
