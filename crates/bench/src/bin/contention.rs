//! Extension sweep: per-request latency of remote reads under link
//! contention (beyond the paper's isolated single-requester numbers).
//!
//! Run: `cargo run -p cxl0-bench --bin contention --release`

use cxl0_fabric::{contention_sweep, AccessPath, LatencyConfig};
use cxl0_protocol::CxlOp;

fn main() {
    let cfg = LatencyConfig::testbed();
    let counts = [1, 2, 4, 8, 16, 32, 64, 128];
    for path in [AccessPath::HostToHdm, AccessPath::DeviceToHm] {
        println!("\n{} — Read latency vs concurrent requesters", path.label());
        println!(
            "{:>11} {:>14} {:>14}",
            "requesters", "mean ns", "makespan ns"
        );
        for pt in contention_sweep(&cfg, CxlOp::Read, path, &counts, 500) {
            println!(
                "{:>11} {:>14.1} {:>14}",
                pt.requesters, pt.mean_latency, pt.makespan
            );
        }
    }
    println!("\n(the knee marks where CXL link serialization saturates)");
}
