//! E8 regenerator: the §6.1 performance discussion as a table — the cost
//! of each durability transformation on map and queue workloads, in
//! backend-primitive counts and simulated nanoseconds per operation.
//!
//! Strategies: no durability (baseline), unadapted x86 FliT (unsound!),
//! FliT-CXL0 (Alg. 2), FliT with the owner-LFlush optimisation, and the
//! naive all-MStore transform.
//!
//! Run: `cargo run -p cxl0-bench --bin flit_report --release`

use cxl0_bench::{run_map_workload, run_queue_workload, standard_map_workload};
use cxl0_runtime::api::PersistMode;

fn main() {
    const N: usize = 20_000;

    println!(
        "map workload: {} ops, zipfian(1024, 0.99), 50/50 read/insert\n",
        N
    );
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "strategy",
        "loads/op",
        "stores/op",
        "rmws/op",
        "flush/op",
        "async/op",
        "sim ns/op",
        "wall ns/op"
    );
    for mode in PersistMode::comparison_set() {
        let mut w = standard_map_workload(42);
        let r = run_map_workload(mode, &mut w, N);
        let per = |x: u64| x as f64 / r.ops as f64;
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>12.1} {:>12.1}",
            r.strategy,
            per(r.stats.loads),
            per(r.stats.lstores + r.stats.rstores + r.stats.mstores),
            per(r.stats.rmws),
            r.flushes_per_op(),
            per(r.stats.aflushes),
            r.sim_ns_per_op,
            r.wall_ns_per_op
        );
    }

    println!("\nqueue workload: {} enqueue/dequeue pairs\n", N);
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "strategy",
        "loads/op",
        "stores/op",
        "rmws/op",
        "flush/op",
        "async/op",
        "sim ns/op",
        "wall ns/op"
    );
    for mode in PersistMode::comparison_set() {
        let r = run_queue_workload(mode, N);
        let per = |x: u64| x as f64 / r.ops as f64;
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>12.1} {:>12.1}",
            r.strategy,
            per(r.stats.loads),
            per(r.stats.lstores + r.stats.rstores + r.stats.mstores),
            per(r.stats.rmws),
            r.flushes_per_op(),
            per(r.stats.aflushes),
            r.sim_ns_per_op,
            r.wall_ns_per_op
        );
    }

    println!("\nnotes:");
    println!(
        "  * 'none' is linearizable but NOT durable; 'flit-x86' is UNSOUND under partial crashes"
    );
    println!("    (its LFlush only reaches the owner's cache) — both are lower bounds, not alternatives.");
    println!(
        "  * flit-owner-opt replaces RFlush with LFlush when the writer owns the line (§6.1)."
    );
    println!(
        "  * naive-mstore persists by construction but pays the memory round trip on every store"
    );
    println!("    and loses all cache locality (§6.1: 'expected to yield inferior performance').");
    println!("  * flit-async runs on the CXL0_AF extension (AFlush + Barrier): stores persist");
    println!("    synchronously, helping flushes defer to one overlapped barrier per operation");
    println!("    (see the async_report bin for the batching sweep).");
}
