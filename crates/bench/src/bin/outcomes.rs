//! Extension regenerator: concurrent-program outcome enumeration — the
//! §6 motivating example and two message-passing patterns as *programs*
//! (interleavings explored automatically, not pre-serialized traces).
//!
//! Run: `cargo run -p cxl0-bench --bin outcomes --release`

use cxl0_explore::{outcomes, Instr, Program, Reg};
use cxl0_model::{Loc, MachineId, Semantics, StoreKind, SystemConfig, Val};

fn print_outcomes(title: &str, sem: &Semantics, prog: &Program) {
    println!("{title}");
    let outs = outcomes(sem, prog);
    for o in &outs {
        let rendered: Vec<String> = o.iter().map(|(Reg(n), v)| format!("{n}={v}")).collect();
        println!("   {{{}}}", rendered.join(", "));
    }
    println!("   ({} distinct outcomes)\n", outs.len());
}

fn main() {
    let m1 = MachineId(0);
    let m2 = MachineId(1);
    let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
    let x_on_m2 = Loc::new(m2, 0);
    let flag_on_m1 = Loc::new(m1, 0);

    // §6's motivating example: x=1; r1=x; r2=x with the owner crashing.
    let prog = Program::new()
        .thread(
            m1,
            vec![
                Instr::Store(StoreKind::Local, x_on_m2, Val(1)),
                Instr::Load(x_on_m2, Reg("r1")),
                Instr::Load(x_on_m2, Reg("r2")),
            ],
        )
        .may_crash(m2);
    print_outcomes(
        "motivating example (LStore; owner may crash) — r1≠r2 is reachable:",
        &sem,
        &prog,
    );

    // Message passing, unsafe version (LStore data):
    let mp = |data_kind| {
        Program::new()
            .thread(
                m1,
                vec![
                    Instr::Store(data_kind, x_on_m2, Val(1)),
                    Instr::Store(StoreKind::Remote, flag_on_m1, Val(1)),
                ],
            )
            .thread(
                m2,
                vec![
                    Instr::Load(flag_on_m1, Reg("flag")),
                    Instr::Load(x_on_m2, Reg("data")),
                ],
            )
            .may_crash(m2)
    };
    print_outcomes(
        "message passing with LStore data (flag=1, data=0 reachable — broken):",
        &sem,
        &mp(StoreKind::Local),
    );
    print_outcomes(
        "message passing with MStore data (flag=1 ⇒ data=1 — safe):",
        &sem,
        &mp(StoreKind::Memory),
    );
}
