//! # `cxl0-bench` — experiment harnesses
//!
//! Shared plumbing for the per-table/per-figure regenerator binaries
//! (`src/bin/*`) and the criterion benches (`benches/*`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig3_litmus` | Figure 3 + test 13 verdict table |
//! | `variants` | §3.5 tests 10–12 verdict triples |
//! | `prop1` | Proposition 1 check report |
//! | `table1` | Table 1 |
//! | `fig5` | Figure 5 |
//! | `refine` | §3.5 refinement claims + witnesses |
//! | `topologies` | §4 capability matrix |
//! | `flit_report` | §6.1 transformation-overhead comparison |
//! | `contention` | link-contention extension sweep |
//! | `perf_baseline` | the recorded multi-threaded backend baseline (`BENCH_fabric.json`) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use cxl0_model::{MachineId, SystemConfig};
use cxl0_runtime::alloc::Allocator;
use cxl0_runtime::api::{Cluster, PersistMode};
use cxl0_runtime::{Persistence, SharedHeap, SimFabric, SmrDomain, StatsSnapshot, TraceConfig};
use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};

/// The machine hosting benchmark data structures.
pub const MEM_NODE: MachineId = MachineId(2);

/// Result of one workload run under one strategy.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The strategy name.
    pub strategy: &'static str,
    /// Operations performed.
    pub ops: usize,
    /// Backend primitive counts for the run.
    pub stats: StatsSnapshot,
    /// Simulated nanoseconds per operation.
    pub sim_ns_per_op: f64,
    /// Wall-clock nanoseconds per operation.
    pub wall_ns_per_op: f64,
}

impl RunReport {
    /// Flushes issued per operation.
    pub fn flushes_per_op(&self) -> f64 {
        self.stats.flushes() as f64 / self.ops as f64
    }
}

/// A fresh 2-compute + 1-memory fabric with `cells` shared cells (the
/// low-level layer, for the criterion benches that drive primitives).
pub fn bench_fabric(cells: u32) -> (Arc<SimFabric>, Arc<SharedHeap>) {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, cells));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM_NODE));
    (fabric, heap)
}

/// A fresh 2-compute + 1-memory fabric with a crash-consistent
/// [`Allocator`] over the memory node — for benches that drive the
/// reclaiming data structures below the session API.
pub fn bench_allocator(
    cells: u32,
    persist: Arc<dyn Persistence>,
) -> (Arc<SimFabric>, Arc<Allocator>) {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, cells));
    let alloc = Arc::new(Allocator::over_region(fabric.config(), MEM_NODE, persist));
    (fabric, alloc)
}

/// As [`bench_allocator`], but wrapped in an [`SmrDomain`] — for benches
/// that drive the traversal structures (map, list), which allocate and
/// retire through the reclamation domain.
pub fn bench_smr(cells: u32, persist: Arc<dyn Persistence>) -> (Arc<SimFabric>, Arc<SmrDomain>) {
    let (fabric, alloc) = bench_allocator(cells, persist);
    (fabric, Arc::new(SmrDomain::new(alloc)))
}

/// A fresh 2-compute + 1-memory [`Cluster`] with `cells` shared cells
/// under `mode` — the session-API counterpart of [`bench_fabric`]. The
/// memory node is [`MEM_NODE`].
pub fn bench_cluster(cells: u32, mode: PersistMode) -> Arc<Cluster> {
    Cluster::builder(SystemConfig::symmetric_nvm(3, cells))
        .memory_node(MEM_NODE)
        .persist(mode)
        .build()
        .expect("benchmark cluster configuration is valid")
}

/// As [`bench_cluster`], but with the runtime tracer armed (no export
/// path) — for the `--latency` sweep, which reads op percentiles and
/// the recovery breakdown straight off the tracer.
pub fn bench_cluster_traced(cells: u32, mode: PersistMode) -> Arc<Cluster> {
    Cluster::builder(SystemConfig::symmetric_nvm(3, cells))
        .memory_node(MEM_NODE)
        .persist(mode)
        .with_tracing(TraceConfig::default())
        .build()
        .expect("benchmark cluster configuration is valid")
}

/// Runs `n` map operations from `workload` under `mode`, returning a
/// report of primitive counts and per-op costs.
pub fn run_map_workload(mode: PersistMode, workload: &mut Workload, n: usize) -> RunReport {
    let cluster = bench_cluster(1 << 18, mode);
    let setup = cluster.session(MachineId(0));
    let map = setup
        .create_map::<u64, u64>("bench/map", 4096)
        .expect("heap fits the map");
    // A fresh session's entry snapshot starts the measurement window
    // after setup; `stats_delta` at the end is the whole diff dance.
    let session = cluster.session(MachineId(0));
    let start = std::time::Instant::now();
    for op in workload.take_ops(n) {
        match op {
            WorkloadOp::Read(k) => {
                map.get(&session, k).unwrap();
            }
            WorkloadOp::Insert(k, v) => {
                map.insert(&session, k, v).unwrap();
            }
            WorkloadOp::Remove(k) => {
                map.remove(&session, k).unwrap();
            }
        }
    }
    let wall = start.elapsed().as_nanos() as f64;
    let stats = session.stats_delta();
    RunReport {
        strategy: mode.name(),
        ops: n,
        sim_ns_per_op: stats.sim_ns as f64 / n as f64,
        wall_ns_per_op: wall / n as f64,
        stats,
    }
}

/// Runs `n` enqueue/dequeue pairs under `mode`.
pub fn run_queue_workload(mode: PersistMode, n: usize) -> RunReport {
    let cluster = bench_cluster(1 << 18, mode);
    let setup = cluster.session(MachineId(0));
    let queue = setup
        .create_queue::<u64>("bench/queue")
        .expect("heap fits the queue");
    let session = cluster.session(MachineId(0));
    let start = std::time::Instant::now();
    for i in 0..n as u64 {
        queue.enqueue(&session, i + 1).unwrap();
        queue.dequeue(&session).unwrap();
    }
    let wall = start.elapsed().as_nanos() as f64;
    let stats = session.stats_delta();
    RunReport {
        strategy: mode.name(),
        ops: 2 * n,
        sim_ns_per_op: stats.sim_ns as f64 / (2 * n) as f64,
        wall_ns_per_op: wall / (2 * n) as f64,
        stats,
    }
}

/// A standard YCSB-B-like map workload.
pub fn standard_map_workload(seed: u64) -> Workload {
    Workload::new(KeyDist::zipfian(1024, 0.99), OpMix::update_heavy(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_workload_reports_counts() {
        let mut w = standard_map_workload(7);
        let r = run_map_workload(PersistMode::FlitCxl0, &mut w, 500);
        assert_eq!(r.strategy, "flit-cxl0");
        assert_eq!(r.ops, 500);
        assert!(r.stats.total_ops() > 500);
        assert!(r.sim_ns_per_op > 0.0);
        assert!(r.flushes_per_op() > 0.0);
    }

    #[test]
    fn naive_beats_flit_on_flush_count_but_not_sim_time() {
        let mut w1 = standard_map_workload(9);
        let mut w2 = standard_map_workload(9);
        let flit = run_map_workload(PersistMode::FlitCxl0, &mut w1, 800);
        let naive = run_map_workload(PersistMode::NaiveMStore, &mut w2, 800);
        assert_eq!(naive.stats.flushes(), 0);
        assert!(flit.stats.flushes() > 0);
        // The naive transform pays the remote-memory round trip on every
        // write *and* turns every read of an uncached line into a memory
        // read; simulated time per op must exceed FliT's.
        assert!(
            naive.sim_ns_per_op > flit.sim_ns_per_op * 0.9,
            "naive {} vs flit {}",
            naive.sim_ns_per_op,
            flit.sim_ns_per_op
        );
    }

    #[test]
    fn queue_workload_runs_under_all_strategies() {
        for mode in PersistMode::comparison_set() {
            let r = run_queue_workload(mode, 300);
            assert_eq!(r.ops, 600);
            assert!(r.stats.total_ops() > 0, "{}", r.strategy);
            assert_eq!(r.strategy, mode.name());
        }
    }

    #[test]
    fn flit_async_uses_buffers_not_sync_flushes() {
        let mut w = standard_map_workload(11);
        let r = run_map_workload(PersistMode::FlitAsync, &mut w, 500);
        assert_eq!(r.strategy, "flit-async");
        assert!(r.stats.aflushes > 0, "expected asynchronous flushes");
        assert!(r.stats.barriers > 0, "expected barriers");
        assert_eq!(r.stats.flushes(), 0, "no synchronous flushes expected");
    }
}
