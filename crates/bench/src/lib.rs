//! # `cxl0-bench` — experiment harnesses
//!
//! Shared plumbing for the per-table/per-figure regenerator binaries
//! (`src/bin/*`) and the criterion benches (`benches/*`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig3_litmus` | Figure 3 + test 13 verdict table |
//! | `variants` | §3.5 tests 10–12 verdict triples |
//! | `prop1` | Proposition 1 check report |
//! | `table1` | Table 1 |
//! | `fig5` | Figure 5 |
//! | `refine` | §3.5 refinement claims + witnesses |
//! | `topologies` | §4 capability matrix |
//! | `flit_report` | §6.1 transformation-overhead comparison |
//! | `contention` | link-contention extension sweep |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use cxl0_model::{MachineId, SystemConfig};
use cxl0_runtime::{
    DurableMap, DurableQueue, FlitAsync, FlitCxl0, FlitOwnerOpt, FlitX86, NaiveMStore,
    NoPersistence, Persistence, SharedHeap, SimFabric, StatsSnapshot,
};
use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};

/// The machine hosting benchmark data structures.
pub const MEM_NODE: MachineId = MachineId(2);

/// All six persistence strategies, in report order.
pub fn all_strategies() -> Vec<Arc<dyn Persistence>> {
    vec![
        Arc::new(NoPersistence),
        Arc::new(FlitX86::default()),
        Arc::new(FlitCxl0::default()),
        Arc::new(FlitOwnerOpt::default()),
        Arc::new(FlitAsync::default()),
        Arc::new(NaiveMStore),
    ]
}

/// Result of one workload run under one strategy.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The strategy name.
    pub strategy: &'static str,
    /// Operations performed.
    pub ops: usize,
    /// Backend primitive counts for the run.
    pub stats: StatsSnapshot,
    /// Simulated nanoseconds per operation.
    pub sim_ns_per_op: f64,
    /// Wall-clock nanoseconds per operation.
    pub wall_ns_per_op: f64,
}

impl RunReport {
    /// Flushes issued per operation.
    pub fn flushes_per_op(&self) -> f64 {
        self.stats.flushes() as f64 / self.ops as f64
    }
}

/// A fresh 2-compute + 1-memory fabric with `cells` shared cells.
pub fn bench_fabric(cells: u32) -> (Arc<SimFabric>, Arc<SharedHeap>) {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, cells));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM_NODE));
    (fabric, heap)
}

/// Runs `n` map operations from `workload` under `strategy`, returning a
/// report of primitive counts and per-op costs.
pub fn run_map_workload(
    strategy: Arc<dyn Persistence>,
    workload: &mut Workload,
    n: usize,
) -> RunReport {
    let name = strategy.name();
    let (fabric, heap) = bench_fabric(1 << 18);
    let map = DurableMap::create(&heap, 4096, strategy).expect("heap fits the map");
    let node = fabric.node(MachineId(0));
    let before = fabric.stats().snapshot();
    let start = std::time::Instant::now();
    for op in workload.take_ops(n) {
        match op {
            WorkloadOp::Read(k) => {
                map.get(&node, k).unwrap();
            }
            WorkloadOp::Insert(k, v) => {
                map.insert(&node, k, v).unwrap();
            }
            WorkloadOp::Remove(k) => {
                map.remove(&node, k).unwrap();
            }
        }
    }
    let wall = start.elapsed().as_nanos() as f64;
    let stats = fabric.stats().snapshot().since(&before);
    RunReport {
        strategy: name,
        ops: n,
        sim_ns_per_op: stats.sim_ns as f64 / n as f64,
        wall_ns_per_op: wall / n as f64,
        stats,
    }
}

/// Runs `n` enqueue/dequeue pairs under `strategy`.
pub fn run_queue_workload(strategy: Arc<dyn Persistence>, n: usize) -> RunReport {
    let name = strategy.name();
    let (fabric, heap) = bench_fabric(1 << 18);
    let queue = DurableQueue::create(&heap, strategy).expect("heap fits the queue");
    let node = fabric.node(MachineId(0));
    queue.init(&node).unwrap();
    let before = fabric.stats().snapshot();
    let start = std::time::Instant::now();
    for i in 0..n as u64 {
        queue.enqueue(&node, i + 1).unwrap();
        queue.dequeue(&node).unwrap();
    }
    let wall = start.elapsed().as_nanos() as f64;
    let stats = fabric.stats().snapshot().since(&before);
    RunReport {
        strategy: name,
        ops: 2 * n,
        sim_ns_per_op: stats.sim_ns as f64 / (2 * n) as f64,
        wall_ns_per_op: wall / (2 * n) as f64,
        stats,
    }
}

/// A standard YCSB-B-like map workload.
pub fn standard_map_workload(seed: u64) -> Workload {
    Workload::new(KeyDist::zipfian(1024, 0.99), OpMix::update_heavy(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_workload_reports_counts() {
        let mut w = standard_map_workload(7);
        let r = run_map_workload(Arc::new(FlitCxl0::default()), &mut w, 500);
        assert_eq!(r.strategy, "flit-cxl0");
        assert_eq!(r.ops, 500);
        assert!(r.stats.total_ops() > 500);
        assert!(r.sim_ns_per_op > 0.0);
        assert!(r.flushes_per_op() > 0.0);
    }

    #[test]
    fn naive_beats_flit_on_flush_count_but_not_sim_time() {
        let mut w1 = standard_map_workload(9);
        let mut w2 = standard_map_workload(9);
        let flit = run_map_workload(Arc::new(FlitCxl0::default()), &mut w1, 800);
        let naive = run_map_workload(Arc::new(NaiveMStore), &mut w2, 800);
        assert_eq!(naive.stats.flushes(), 0);
        assert!(flit.stats.flushes() > 0);
        // The naive transform pays the remote-memory round trip on every
        // write *and* turns every read of an uncached line into a memory
        // read; simulated time per op must exceed FliT's.
        assert!(
            naive.sim_ns_per_op > flit.sim_ns_per_op * 0.9,
            "naive {} vs flit {}",
            naive.sim_ns_per_op,
            flit.sim_ns_per_op
        );
    }

    #[test]
    fn queue_workload_runs_under_all_strategies() {
        for s in all_strategies() {
            let r = run_queue_workload(s, 300);
            assert_eq!(r.ops, 600);
            assert!(r.stats.total_ops() > 0, "{}", r.strategy);
        }
    }

    #[test]
    fn flit_async_uses_buffers_not_sync_flushes() {
        let mut w = standard_map_workload(11);
        let r = run_map_workload(Arc::new(cxl0_runtime::FlitAsync::default()), &mut w, 500);
        assert_eq!(r.strategy, "flit-async");
        assert!(r.stats.aflushes > 0, "expected asynchronous flushes");
        assert!(r.stats.barriers > 0, "expected barriers");
        assert_eq!(r.stats.flushes(), 0, "no synchronous flushes expected");
    }
}
