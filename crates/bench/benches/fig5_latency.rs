//! Criterion bench for E5: the Figure-5 sweep — per-primitive simulated
//! access over each path (benchmarks the simulator itself; the simulated
//! nanoseconds are printed by `--bin fig5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxl0_fabric::{AccessPath, FabricSim, LatencyConfig};
use cxl0_protocol::CxlOp;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_access");
    for path in AccessPath::ALL {
        for op in CxlOp::ALL {
            let mut sim = FabricSim::new(LatencyConfig::testbed(), 7);
            if sim.access(op, path).is_none() {
                continue; // not measurable (??? in Table 1)
            }
            group.bench_with_input(
                BenchmarkId::new(path.label().replace(' ', "_"), op.to_string()),
                &op,
                |b, &op| b.iter(|| sim.access(op, path)),
            );
        }
    }
    group.finish();
}

fn figure5_full_sweep(c: &mut Criterion) {
    c.bench_function("fig5_full_sweep_1000", |b| {
        b.iter(|| cxl0_fabric::run_figure5(&LatencyConfig::testbed(), 1000, 42))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fig5, figure5_full_sweep
}
criterion_main!(benches);
