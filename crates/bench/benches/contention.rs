//! Criterion bench for the link-contention extension: discrete-event
//! simulation cost across requester counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxl0_fabric::{run_contention, AccessPath, LatencyConfig};
use cxl0_protocol::CxlOp;

fn contention(c: &mut Criterion) {
    let cfg = LatencyConfig::testbed();
    let mut group = c.benchmark_group("contention_sim");
    for k in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| run_contention(&cfg, CxlOp::Read, AccessPath::HostToHdm, k, 200))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = contention
}
criterion_main!(benches);
