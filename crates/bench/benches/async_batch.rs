//! Criterion bench for E11: synchronous (Alg. 2) vs asynchronous
//! (Alg. 1 on `CXL0_AF`) helping flushes, swept over the number of helped
//! reads per operation. Wall-clock companion of the `async_report` binary.
//!
//! Note on interpretation: criterion measures the *simulator's* wall
//! clock, where an `aflush` costs a host-side buffer insertion while the
//! modeled hardware cost is near zero. The modeled comparison — where
//! `flit-async` wins for k > 1 — is the deterministic simulated-time
//! sweep in `src/bin/async_report.rs`; this bench tracks the harness
//! overhead itself.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cxl0_model::{Loc, MachineId, SystemConfig};
use cxl0_runtime::{FlitAsync, FlitCxl0, Persistence, SharedHeap, SimFabric};

const MEM: MachineId = MachineId(2);

struct Rig {
    fabric: Arc<SimFabric>,
    cells: Vec<Loc>,
    strategy: Arc<dyn Persistence>,
}

fn rig(k: usize, make: impl FnOnce() -> (Arc<dyn Persistence>, Box<dyn Fn(Loc)>)) -> Rig {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 10));
    let heap = Arc::new(SharedHeap::new(fabric.config(), MEM));
    let cells: Vec<Loc> = (0..k).map(|_| heap.alloc(1).expect("heap fits")).collect();
    let (strategy, raise) = make();
    for &c in &cells {
        raise(c);
    }
    Rig {
        fabric,
        cells,
        strategy,
    }
}

fn helped_read_op(rig: &Rig) {
    let node = rig.fabric.node(MachineId(0));
    for &c in &rig.cells {
        rig.strategy.shared_load(&node, c, true).unwrap();
    }
    rig.strategy.complete_op(&node).unwrap();
}

fn bench_helping(c: &mut Criterion) {
    let mut group = c.benchmark_group("helped_reads_per_op");
    for k in [1usize, 4, 16] {
        group.throughput(Throughput::Elements(k as u64));
        let sync_rig = rig(k, || {
            let p = Arc::new(FlitCxl0::default());
            let q = Arc::clone(&p);
            (
                p as Arc<dyn Persistence>,
                Box::new(move |l| q.raise_counter(l)),
            )
        });
        group.bench_with_input(BenchmarkId::new("flit-cxl0", k), &k, |b, _| {
            b.iter(|| helped_read_op(&sync_rig))
        });
        let async_rig = rig(k, || {
            let p = Arc::new(FlitAsync::default());
            let q = Arc::clone(&p);
            (
                p as Arc<dyn Persistence>,
                Box::new(move |l| q.raise_counter(l)),
            )
        });
        group.bench_with_input(BenchmarkId::new("flit-async", k), &k, |b, _| {
            b.iter(|| helped_read_op(&async_rig))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_helping);
criterion_main!(benches);
