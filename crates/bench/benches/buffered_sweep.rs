//! Criterion bench for E12: strict FliT vs `BufferedEpoch` at several
//! sync intervals on a zipfian map workload. Wall-clock companion of the
//! `buffered_report` binary (which reports deterministic simulated time
//! and the ops-at-risk window).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cxl0_model::{MachineId, SystemConfig};
use cxl0_runtime::alloc::Allocator;
use cxl0_runtime::{
    BufferedEpoch, DurableMap, FlitCxl0, Persistence, SharedHeap, SimFabric, SmrDomain,
};
use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};

const MEM: MachineId = MachineId(2);
const BATCH: usize = 256;

struct Rig {
    fabric: Arc<SimFabric>,
    map: DurableMap,
    workload: Workload,
}

fn rig(strategy: Arc<dyn Persistence>) -> Rig {
    let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 18));
    let alloc = Arc::new(Allocator::over_region(fabric.config(), MEM, strategy));
    let smr = Arc::new(SmrDomain::new(alloc));
    let node = fabric.node(MachineId(0));
    let map = DurableMap::create(&smr, &node, 1024)
        .expect("fresh machine")
        .expect("heap fits");
    Rig {
        fabric,
        map,
        workload: Workload::new(KeyDist::zipfian(512, 0.99), OpMix::update_heavy(), 42),
    }
}

fn run_batch(rig: &mut Rig) {
    let node = rig.fabric.node(MachineId(0));
    for op in rig.workload.take_ops(BATCH) {
        match op {
            WorkloadOp::Read(k) => {
                rig.map.get(&node, k).unwrap();
            }
            WorkloadOp::Insert(k, v) => {
                rig.map.insert(&node, k, v).unwrap();
            }
            WorkloadOp::Remove(k) => {
                rig.map.remove(&node, k).unwrap();
            }
        }
    }
}

fn bench_buffered(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_strategies_map");
    group.throughput(Throughput::Elements(BATCH as u64));

    let mut flit = rig(Arc::new(FlitCxl0::default()));
    group.bench_function("flit-cxl0", |b| b.iter(|| run_batch(&mut flit)));

    for interval in [4usize, 64] {
        let fabric = SimFabric::new(SystemConfig::symmetric_nvm(3, 1 << 18));
        let heap = Arc::new(SharedHeap::new(fabric.config(), MEM));
        let buffered = Arc::new(BufferedEpoch::create(&heap, 8192, interval).expect("heap fits"));
        // The epoch machinery bumped the front of the region; the
        // allocator takes the untouched upper half.
        let alloc = Arc::new(Allocator::with_range(
            fabric.config(),
            MEM,
            1 << 17,
            1 << 17,
            buffered as Arc<dyn Persistence>,
        ));
        let smr = Arc::new(SmrDomain::new(alloc));
        let node = fabric.node(MachineId(0));
        let map = DurableMap::create(&smr, &node, 1024)
            .expect("fresh machine")
            .expect("heap fits");
        let mut r = Rig {
            fabric,
            map,
            workload: Workload::new(KeyDist::zipfian(512, 0.99), OpMix::update_heavy(), 42),
        };
        group.bench_with_input(
            BenchmarkId::new("buffered-epoch", interval),
            &interval,
            |b, _| b.iter(|| run_batch(&mut r)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_buffered);
criterion_main!(benches);
