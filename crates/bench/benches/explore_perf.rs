//! Criterion bench: explorer performance — litmus suite evaluation,
//! reachable-state enumeration, and Proposition-1 checking (the model
//! checker is itself a deliverable; its cost determines how large a
//! configuration the analyses scale to).

use criterion::{criterion_group, criterion_main, Criterion};
use cxl0_explore::litmus::run_suite;
use cxl0_explore::{check_proposition1, explore, paper, AlphabetBuilder};
use cxl0_model::{Semantics, SystemConfig, Val};

fn litmus_suite(c: &mut Criterion) {
    let tests = paper::all_tests();
    c.bench_function("litmus_full_suite", |b| b.iter(|| run_suite(&tests)));
}

fn state_space(c: &mut Criterion) {
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = Semantics::new(cfg.clone());
    let alphabet = AlphabetBuilder::new(&cfg).build();
    c.bench_function("explore_2m_1loc_full_alphabet", |b| {
        b.iter(|| explore(&sem, &alphabet, 1_000_000))
    });
}

fn prop1(c: &mut Criterion) {
    let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
    c.bench_function("proposition1_all_items", |b| {
        b.iter(|| check_proposition1(&sem, &[Val(0), Val(1)], 1_000_000).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = litmus_suite, state_space, prop1
}
criterion_main!(benches);
