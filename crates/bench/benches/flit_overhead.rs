//! Criterion bench for E8: per-operation cost of the durability
//! transformations (§6.1) on the durable map and queue, plus the FliT
//! counter-striping ablation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxl0_bench::{bench_allocator, bench_smr, MEM_NODE};
use cxl0_model::MachineId;
use cxl0_runtime::{
    DurableMap, DurableQueue, FlitCxl0, FlitOwnerOpt, FlitX86, NaiveMStore, NoPersistence,
    Persistence,
};
use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};

fn strategies() -> Vec<Arc<dyn Persistence>> {
    vec![
        Arc::new(NoPersistence),
        Arc::new(FlitX86::default()),
        Arc::new(FlitCxl0::default()),
        Arc::new(FlitOwnerOpt::default()),
        Arc::new(NaiveMStore),
    ]
}

fn map_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_mixed_ops");
    for strategy in strategies() {
        let name = strategy.name();
        let (fabric, smr) = bench_smr(1 << 20, strategy);
        let node = fabric.node(MachineId(0));
        let map = DurableMap::create(&smr, &node, 4096).unwrap().unwrap();
        let mut w = Workload::new(KeyDist::zipfian(1024, 0.99), OpMix::update_heavy(), 11);
        group.bench_function(BenchmarkId::new("strategy", name), |b| {
            b.iter(|| match w.next_op() {
                WorkloadOp::Read(k) => {
                    map.get(&node, k).unwrap();
                }
                WorkloadOp::Insert(k, v) => {
                    map.insert(&node, k, v).unwrap();
                }
                WorkloadOp::Remove(k) => {
                    map.remove(&node, k).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn queue_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_enq_deq");
    for strategy in strategies() {
        let name = strategy.name();
        let (fabric, alloc) = bench_allocator(1 << 22, strategy);
        let node = fabric.node(MachineId(0));
        let queue = DurableQueue::create(&alloc, &node).unwrap().unwrap();
        let mut i = 0u64;
        group.bench_function(BenchmarkId::new("strategy", name), |b| {
            b.iter(|| {
                i += 1;
                queue.enqueue(&node, i).unwrap();
                queue.dequeue(&node).unwrap()
            })
        });
    }
    group.finish();
}

/// Ablation: FliT counter table striping — per-cell (4096 stripes) down
/// to a single shared counter (maximal false sharing → helper flushes).
fn counter_striping(c: &mut Criterion) {
    let mut group = c.benchmark_group("flit_counter_striping");
    for stripes in [1usize, 16, 256, 4096] {
        let (fabric, smr) = bench_smr(1 << 20, Arc::new(FlitCxl0::new(stripes)));
        let node = fabric.node(MachineId(0));
        let map = DurableMap::create(&smr, &node, 4096).unwrap().unwrap();
        let mut w = Workload::new(KeyDist::uniform(1024), OpMix::update_heavy(), 13);
        group.bench_with_input(BenchmarkId::from_parameter(stripes), &stripes, |b, _| {
            b.iter(|| match w.next_op() {
                WorkloadOp::Read(k) => {
                    map.get(&node, k).unwrap();
                }
                WorkloadOp::Insert(k, v) => {
                    map.insert(&node, k, v).unwrap();
                }
                WorkloadOp::Remove(k) => {
                    map.remove(&node, k).unwrap();
                }
            })
        });
        let _ = &fabric;
        let _ = MEM_NODE;
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = map_ops, queue_pairs, counter_striping
}
criterion_main!(benches);
