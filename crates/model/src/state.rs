//! CXL0 system states `γ = (C, M)` (§3.3).
//!
//! `C` maps each machine to its abstract *cache* `C_i : Loc → Val ⊎ {⊥}`
//! and `M` maps each machine to its *memory* `M_i : Loc_i → Val`. These are
//! abstract propagation layers, not literal hardware caches: they record
//! how far the latest value of each address has travelled toward physical
//! memory.
//!
//! The representation uses `BTreeMap`s for caches (absent key = `⊥`) so
//! that states are canonical, hashable and orderable — which the explorer
//! crate relies on for state-space deduplication.

use std::collections::BTreeMap;
use std::fmt;

use crate::config::SystemConfig;
use crate::ids::{Loc, MachineId, Val};

/// One machine's abstract cache `C_i`. Absent entries are `⊥` (invalid).
pub type Cache = BTreeMap<Loc, Val>;

/// A CXL0 system state `γ = (C, M)`.
///
/// # Examples
///
/// ```
/// use cxl0_model::{State, SystemConfig, Loc, MachineId, Val};
/// let cfg = SystemConfig::symmetric_nvm(2, 1);
/// let st = State::initial(&cfg);
/// let x = Loc::new(MachineId(0), 0);
/// assert_eq!(st.cache(MachineId(0), x), None);       // empty caches
/// assert_eq!(st.memory(x), Val::ZERO);               // zeroed memories
/// assert_eq!(st.visible_value(x), Val::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    /// Per-machine caches, indexed by machine id.
    caches: Vec<Cache>,
    /// Per-machine memories: `mems[i][a]` is `M_i(Loc{i,a})`.
    mems: Vec<Vec<Val>>,
}

impl State {
    /// The initial state: all caches empty (`C_i = λx.⊥`) and all memories
    /// zero-initialized (`M_i = λx.0`).
    pub fn initial(cfg: &SystemConfig) -> Self {
        let n = cfg.num_machines();
        State {
            caches: vec![Cache::new(); n],
            mems: (0..n)
                .map(|i| vec![Val::ZERO; cfg.machine(MachineId(i)).locations as usize])
                .collect(),
        }
    }

    /// Number of machines in this state.
    pub fn num_machines(&self) -> usize {
        self.caches.len()
    }

    /// `C_i(x)`: the cached value of `loc` at machine `m`, or `None` for `⊥`.
    pub fn cache(&self, m: MachineId, loc: Loc) -> Option<Val> {
        self.caches[m.index()].get(&loc).copied()
    }

    /// The full cache map of machine `m`.
    pub fn cache_of(&self, m: MachineId) -> &Cache {
        &self.caches[m.index()]
    }

    /// `M_k(x)`: the memory value of `loc` at its owner.
    ///
    /// # Panics
    ///
    /// Panics if `loc` does not exist in this state.
    pub fn memory(&self, loc: Loc) -> Val {
        self.mems[loc.owner.index()][loc.addr.index()]
    }

    /// The unique value currently *visible* to a load of `loc`: the cached
    /// value if any cache holds one (they all agree, by the global
    /// invariant), otherwise the owner's memory value.
    pub fn visible_value(&self, loc: Loc) -> Val {
        self.cached_value(loc).unwrap_or_else(|| self.memory(loc))
    }

    /// The value held in caches for `loc`, if any cache holds one.
    pub fn cached_value(&self, loc: Loc) -> Option<Val> {
        self.caches.iter().find_map(|c| c.get(&loc).copied())
    }

    /// The machines whose caches currently hold `loc`.
    pub fn holders(&self, loc: Loc) -> Vec<MachineId> {
        self.caches
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains_key(&loc))
            .map(|(i, _)| MachineId(i))
            .collect()
    }

    /// True if no cache holds `loc` (`∀j. C_j(x) = ⊥`).
    pub fn no_cache_holds(&self, loc: Loc) -> bool {
        self.caches.iter().all(|c| !c.contains_key(&loc))
    }

    /// True if every cache is completely empty (the GPF precondition).
    pub fn all_caches_empty(&self) -> bool {
        self.caches.iter().all(|c| c.is_empty())
    }

    // ------------------------------------------------------------------
    // Mutators used by the semantics module (crate-internal).
    // ------------------------------------------------------------------

    pub(crate) fn set_cache(&mut self, m: MachineId, loc: Loc, v: Val) {
        self.caches[m.index()].insert(loc, v);
    }

    pub(crate) fn invalidate_cache(&mut self, m: MachineId, loc: Loc) {
        self.caches[m.index()].remove(&loc);
    }

    pub(crate) fn invalidate_all_caches(&mut self, loc: Loc) {
        for c in &mut self.caches {
            c.remove(&loc);
        }
    }

    pub(crate) fn invalidate_all_except(&mut self, keep: MachineId, loc: Loc) {
        for (i, c) in self.caches.iter_mut().enumerate() {
            if i != keep.index() {
                c.remove(&loc);
            }
        }
    }

    pub(crate) fn clear_cache_of(&mut self, m: MachineId) {
        self.caches[m.index()].clear();
    }

    /// Drop every entry for locations owned by `owner` from every cache
    /// (used by the PSN crash variant).
    pub(crate) fn drop_owned_from_all_caches(&mut self, owner: MachineId) {
        for c in &mut self.caches {
            c.retain(|loc, _| loc.owner != owner);
        }
    }

    pub(crate) fn set_memory(&mut self, loc: Loc, v: Val) {
        self.mems[loc.owner.index()][loc.addr.index()] = v;
    }

    pub(crate) fn zero_memory_of(&mut self, m: MachineId) {
        for v in &mut self.mems[m.index()] {
            *v = Val::ZERO;
        }
    }

    /// Checks the global cache-coherence invariant of §3.3:
    ///
    /// ```text
    /// ∀ i, j, x.  C_i(x) ≠ ⊥ ∧ C_j(x) ≠ ⊥  ⟹  C_i(x) = C_j(x)
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first violating location with the two disagreeing
    /// machine/value pairs.
    pub fn check_invariant(&self) -> Result<(), InvariantViolation> {
        let mut seen: BTreeMap<Loc, (MachineId, Val)> = BTreeMap::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (&loc, &v) in c {
                match seen.get(&loc) {
                    Some(&(first, fv)) if fv != v => {
                        return Err(InvariantViolation {
                            loc,
                            first,
                            first_val: fv,
                            second: MachineId(i),
                            second_val: v,
                        });
                    }
                    Some(_) => {}
                    None => {
                        seen.insert(loc, (MachineId(i), v));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "state {{")?;
        for (i, c) in self.caches.iter().enumerate() {
            write!(f, "  C_m{i} = {{")?;
            for (k, (loc, v)) in c.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{loc}↦{v}")?;
            }
            writeln!(f, "}}")?;
        }
        for (i, m) in self.mems.iter().enumerate() {
            write!(f, "  M_m{i} = [")?;
            for (k, v) in m.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "}}")
    }
}

/// Violation of the global cache invariant: two caches hold different valid
/// values for the same location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The offending location.
    pub loc: Loc,
    /// First machine holding a valid value.
    pub first: MachineId,
    /// That machine's value.
    pub first_val: Val,
    /// Second machine holding a different valid value.
    pub second: MachineId,
    /// That machine's value.
    pub second_val: Val,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache invariant violated at {}: {}↦{} but {}↦{}",
            self.loc, self.first, self.first_val, self.second, self.second_val
        )
    }
}

impl std::error::Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::symmetric_nvm(2, 2)
    }

    #[test]
    fn initial_state_is_empty_and_zeroed() {
        let cfg = cfg();
        let st = State::initial(&cfg);
        assert_eq!(st.num_machines(), 2);
        assert!(st.all_caches_empty());
        for loc in cfg.all_locations() {
            assert_eq!(st.memory(loc), Val::ZERO);
            assert!(st.no_cache_holds(loc));
            assert_eq!(st.visible_value(loc), Val::ZERO);
        }
        assert!(st.check_invariant().is_ok());
    }

    #[test]
    fn visible_value_prefers_cache() {
        let cfg = cfg();
        let mut st = State::initial(&cfg);
        let x = Loc::new(MachineId(0), 0);
        st.set_memory(x, Val(5));
        assert_eq!(st.visible_value(x), Val(5));
        st.set_cache(MachineId(1), x, Val(7));
        assert_eq!(st.visible_value(x), Val(7));
        assert_eq!(st.holders(x), vec![MachineId(1)]);
    }

    #[test]
    fn invariant_detects_disagreement() {
        let cfg = cfg();
        let mut st = State::initial(&cfg);
        let x = Loc::new(MachineId(0), 0);
        st.set_cache(MachineId(0), x, Val(1));
        st.set_cache(MachineId(1), x, Val(1));
        assert!(st.check_invariant().is_ok());
        st.set_cache(MachineId(1), x, Val(2));
        let err = st.check_invariant().unwrap_err();
        assert_eq!(err.loc, x);
        assert_eq!(err.first_val, Val(1));
        assert_eq!(err.second_val, Val(2));
        assert!(err.to_string().contains("cache invariant violated"));
    }

    #[test]
    fn invalidation_helpers() {
        let cfg = cfg();
        let mut st = State::initial(&cfg);
        let x = Loc::new(MachineId(0), 0);
        let y = Loc::new(MachineId(1), 1);
        st.set_cache(MachineId(0), x, Val(1));
        st.set_cache(MachineId(1), x, Val(1));
        st.set_cache(MachineId(0), y, Val(2));
        st.invalidate_all_except(MachineId(0), x);
        assert_eq!(st.holders(x), vec![MachineId(0)]);
        st.invalidate_all_caches(x);
        assert!(st.no_cache_holds(x));
        assert_eq!(st.cache(MachineId(0), y), Some(Val(2)));
        st.clear_cache_of(MachineId(0));
        assert!(st.all_caches_empty());
    }

    #[test]
    fn psn_drop_only_affects_owned_locations() {
        let cfg = cfg();
        let mut st = State::initial(&cfg);
        let x0 = Loc::new(MachineId(0), 0);
        let x1 = Loc::new(MachineId(1), 0);
        st.set_cache(MachineId(1), x0, Val(1));
        st.set_cache(MachineId(1), x1, Val(2));
        st.drop_owned_from_all_caches(MachineId(0));
        assert!(st.no_cache_holds(x0));
        assert_eq!(st.cache(MachineId(1), x1), Some(Val(2)));
    }

    #[test]
    fn zero_memory_resets_values() {
        let cfg = cfg();
        let mut st = State::initial(&cfg);
        let x = Loc::new(MachineId(0), 1);
        st.set_memory(x, Val(9));
        st.zero_memory_of(MachineId(0));
        assert_eq!(st.memory(x), Val::ZERO);
    }

    #[test]
    fn display_renders_both_components() {
        let cfg = cfg();
        let mut st = State::initial(&cfg);
        st.set_cache(MachineId(0), Loc::new(MachineId(1), 0), Val(3));
        let s = st.to_string();
        assert!(s.contains("C_m0"));
        assert!(s.contains("M_m1"));
        assert!(s.contains("↦3"));
    }

    #[test]
    fn states_are_ord_and_hashable() {
        use std::collections::{BTreeSet, HashSet};
        let cfg = cfg();
        let a = State::initial(&cfg);
        let mut b = a.clone();
        b.set_memory(Loc::new(MachineId(0), 0), Val(1));
        let mut hs = HashSet::new();
        hs.insert(a.clone());
        hs.insert(b.clone());
        hs.insert(a.clone());
        assert_eq!(hs.len(), 2);
        let mut bs = BTreeSet::new();
        bs.insert(a);
        bs.insert(b);
        assert_eq!(bs.len(), 2);
    }
}
