//! System configuration: the static description of the machines that make
//! up a CXL0 system (§3.1 of the paper).
//!
//! A system consists of `N` machines, each contributing zero or more shared
//! memory locations and declaring whether its memory is volatile or
//! non-volatile. Compute-only nodes contribute zero locations; memory-only
//! nodes are machines that never issue operations (the model does not need
//! to distinguish them statically).

use crate::ids::{Loc, MachineId};

/// Whether a machine's attached memory survives a crash of that machine.
///
/// The paper assumes, for brevity, that each `M_i` is either entirely
/// volatile or entirely non-volatile; mixed machines can be modeled with
/// sub-indices, i.e. by splitting one physical machine into two model
/// machines that crash together (see [`MachineConfig::crash_group`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryKind {
    /// Contents are reset to `0` when the owning machine crashes.
    #[default]
    Volatile,
    /// Contents survive a crash of the owning machine (NVMM, or memory in a
    /// separate failure domain such as an external pool).
    NonVolatile,
}

impl MemoryKind {
    /// True if this memory keeps its contents across a crash.
    pub fn is_non_volatile(self) -> bool {
        matches!(self, MemoryKind::NonVolatile)
    }
}

/// Static description of one machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Volatility of the machine's attached shared memory.
    pub memory: MemoryKind,
    /// Number of shared cache-line-granular locations this machine owns.
    /// `0` for compute-only nodes.
    pub locations: u32,
    /// Machines that crash *together* with this one (same failure domain).
    /// Used to model a physical machine with both volatile and non-volatile
    /// memory as two model machines. Usually empty.
    pub crash_group: Vec<MachineId>,
}

impl MachineConfig {
    /// A machine with `locations` non-volatile shared locations.
    pub fn non_volatile(locations: u32) -> Self {
        MachineConfig {
            memory: MemoryKind::NonVolatile,
            locations,
            crash_group: Vec::new(),
        }
    }

    /// A machine with `locations` volatile shared locations.
    pub fn volatile(locations: u32) -> Self {
        MachineConfig {
            memory: MemoryKind::Volatile,
            locations,
            crash_group: Vec::new(),
        }
    }

    /// A compute-only node hosting no shared memory.
    pub fn compute_only() -> Self {
        MachineConfig {
            memory: MemoryKind::Volatile,
            locations: 0,
            crash_group: Vec::new(),
        }
    }
}

/// Static description of a whole CXL0 system: the machines, their memory
/// kinds, and their shared segments.
///
/// # Examples
///
/// ```
/// use cxl0_model::{SystemConfig, MachineConfig, MachineId};
///
/// // Two machines with one non-volatile location each (the typical litmus
/// // configuration of the paper).
/// let cfg = SystemConfig::symmetric_nvm(2, 1);
/// assert_eq!(cfg.num_machines(), 2);
/// assert_eq!(cfg.all_locations().count(), 2);
/// assert!(cfg.machine(MachineId(0)).memory.is_non_volatile());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    machines: Vec<MachineConfig>,
}

impl SystemConfig {
    /// Creates a configuration from explicit machine descriptions.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is empty, or if any `crash_group` entry refers
    /// to a machine outside the system.
    pub fn new(machines: Vec<MachineConfig>) -> Self {
        assert!(!machines.is_empty(), "a system needs at least one machine");
        let n = machines.len();
        for (i, m) in machines.iter().enumerate() {
            for g in &m.crash_group {
                assert!(
                    g.index() < n,
                    "machine m{i} crash_group refers to nonexistent {g}"
                );
            }
        }
        SystemConfig { machines }
    }

    /// `n` machines, each owning `locs` non-volatile locations.
    pub fn symmetric_nvm(n: usize, locs: u32) -> Self {
        SystemConfig::new(vec![MachineConfig::non_volatile(locs); n])
    }

    /// `n` machines, each owning `locs` volatile locations.
    pub fn symmetric_volatile(n: usize, locs: u32) -> Self {
        SystemConfig::new(vec![MachineConfig::volatile(locs); n])
    }

    /// The number of machines `N`.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// The configuration of machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn machine(&self, m: MachineId) -> &MachineConfig {
        &self.machines[m.index()]
    }

    /// Iterator over all machine ids in the system.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.machines.len()).map(MachineId)
    }

    /// Whether `loc` denotes a real location in this system.
    pub fn contains_loc(&self, loc: Loc) -> bool {
        loc.owner.index() < self.machines.len()
            && loc.addr.index() < self.machines[loc.owner.index()].locations as usize
    }

    /// Iterator over every shared location `Loc = ∪ᵢ Locᵢ` in the system.
    pub fn all_locations(&self) -> impl Iterator<Item = Loc> + '_ {
        self.machines
            .iter()
            .enumerate()
            .flat_map(|(i, mc)| (0..mc.locations).map(move |a| Loc::new(MachineId(i), a)))
    }

    /// Iterator over the locations owned by machine `m`.
    pub fn locations_of(&self, m: MachineId) -> impl Iterator<Item = Loc> + '_ {
        let count = self
            .machines
            .get(m.index())
            .map(|mc| mc.locations)
            .unwrap_or(0);
        (0..count).map(move |a| Loc::new(m, a))
    }

    /// All machines in the same failure domain as `m` (always includes `m`).
    pub fn failure_domain(&self, m: MachineId) -> Vec<MachineId> {
        let mut out = vec![m];
        out.extend(self.machines[m.index()].crash_group.iter().copied());
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_nvm_shape() {
        let cfg = SystemConfig::symmetric_nvm(3, 2);
        assert_eq!(cfg.num_machines(), 3);
        assert_eq!(cfg.all_locations().count(), 6);
        for m in cfg.machines() {
            assert!(cfg.machine(m).memory.is_non_volatile());
            assert_eq!(cfg.locations_of(m).count(), 2);
        }
    }

    #[test]
    fn contains_loc_bounds() {
        let cfg = SystemConfig::symmetric_volatile(2, 1);
        assert!(cfg.contains_loc(Loc::new(MachineId(0), 0)));
        assert!(!cfg.contains_loc(Loc::new(MachineId(0), 1)));
        assert!(!cfg.contains_loc(Loc::new(MachineId(2), 0)));
    }

    #[test]
    fn compute_only_machine_has_no_locations() {
        let cfg = SystemConfig::new(vec![
            MachineConfig::compute_only(),
            MachineConfig::non_volatile(4),
        ]);
        assert_eq!(cfg.locations_of(MachineId(0)).count(), 0);
        assert_eq!(cfg.locations_of(MachineId(1)).count(), 4);
    }

    #[test]
    fn heterogeneous_memory_kinds() {
        let cfg = SystemConfig::new(vec![
            MachineConfig::non_volatile(1),
            MachineConfig::volatile(1),
        ]);
        assert!(cfg.machine(MachineId(0)).memory.is_non_volatile());
        assert!(!cfg.machine(MachineId(1)).memory.is_non_volatile());
    }

    #[test]
    fn failure_domain_includes_group() {
        let mut a = MachineConfig::non_volatile(1);
        a.crash_group = vec![MachineId(1)];
        let cfg = SystemConfig::new(vec![a, MachineConfig::volatile(1)]);
        assert_eq!(
            cfg.failure_domain(MachineId(0)),
            vec![MachineId(0), MachineId(1)]
        );
        assert_eq!(cfg.failure_domain(MachineId(1)), vec![MachineId(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_system_rejected() {
        let _ = SystemConfig::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn bad_crash_group_rejected() {
        let mut a = MachineConfig::non_volatile(1);
        a.crash_group = vec![MachineId(5)];
        let _ = SystemConfig::new(vec![a]);
    }
}
