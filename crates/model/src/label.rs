//! Transition labels of the CXL0 labeled transition system (§3.3).
//!
//! Visible labels are the actions emitted by machines — the six store/flush
//! primitives, loads, GPF, and RMWs — plus crash events. Silent `τ` steps
//! (nondeterministic propagation) are represented separately by
//! [`SilentStep`], because explorers treat them differently (they may be
//! interleaved freely between visible labels).

use std::fmt;

use crate::ids::{Loc, MachineId, Val};

/// The three store strengths of CXL0 (§3.2).
///
/// * `Local` — `LStore`: complete once in the issuer's cache.
/// * `Remote` — `RStore`: complete once in the owner's cache (or memory).
/// * `Memory` — `MStore`: complete only once in the owner's physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StoreKind {
    /// `LStore`: store to the issuer's local cache.
    Local,
    /// `RStore`: store to the location owner's cache.
    Remote,
    /// `MStore`: store directly to the owner's physical memory.
    Memory,
}

impl StoreKind {
    /// All three kinds, in increasing strength order (Prop. 1 items 1 & 3).
    pub const ALL: [StoreKind; 3] = [StoreKind::Local, StoreKind::Remote, StoreKind::Memory];
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreKind::Local => write!(f, "L"),
            StoreKind::Remote => write!(f, "R"),
            StoreKind::Memory => write!(f, "M"),
        }
    }
}

/// The two flush strengths of CXL0 (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlushKind {
    /// `LFlush`: write back the issuer's cached copy to the next level.
    Local,
    /// `RFlush`: write back to the owner's physical memory, from wherever
    /// the line currently resides.
    Remote,
}

impl FlushKind {
    /// Both kinds, weaker first (Prop. 1 item 4).
    pub const ALL: [FlushKind; 2] = [FlushKind::Local, FlushKind::Remote];
}

impl fmt::Display for FlushKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushKind::Local => write!(f, "L"),
            FlushKind::Remote => write!(f, "R"),
        }
    }
}

/// A visible transition label of the CXL0 LTS.
///
/// # Examples
///
/// ```
/// use cxl0_model::{Label, Loc, MachineId, StoreKind, Val};
/// let x = Loc::new(MachineId(1), 0);
/// let l = Label::store(StoreKind::Memory, MachineId(0), x, Val(1));
/// assert_eq!(l.to_string(), "MStore_m0(x[m1:a0], 1)");
/// assert_eq!(l.issuer(), Some(MachineId(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// `LStore_i(x,v)` / `RStore_i(x,v)` / `MStore_i(x,v)`.
    Store {
        /// The store strength.
        kind: StoreKind,
        /// The issuing machine `i`.
        by: MachineId,
        /// The target location `x`.
        loc: Loc,
        /// The stored value `v`.
        val: Val,
    },
    /// `Load_i(x,v)`: machine `i` observes value `v` at `x`.
    Load {
        /// The issuing machine `i`.
        by: MachineId,
        /// The loaded location `x`.
        loc: Loc,
        /// The observed value `v`.
        val: Val,
    },
    /// `LFlush_i(x)` / `RFlush_i(x)`.
    Flush {
        /// The flush strength.
        kind: FlushKind,
        /// The issuing machine `i`.
        by: MachineId,
        /// The flushed location `x`.
        loc: Loc,
    },
    /// `GPF_i`: Global Persistent Flush issued by machine `i` (§9.8 of the
    /// CXL spec): drains *all* caches to their backing memories.
    Gpf {
        /// The issuing machine `i`.
        by: MachineId,
    },
    /// `K-RMW_i(x, old, new)`: an atomic read-modify-write that observed
    /// `old` and installed `new` with store strength `K` (§3.3). A failed
    /// CAS is equivalent to a plain [`Label::Load`] and is not represented
    /// here.
    Rmw {
        /// The strength of the embedded store.
        kind: StoreKind,
        /// The issuing machine `i`.
        by: MachineId,
        /// The target location `x`.
        loc: Loc,
        /// The value read by the load half.
        old: Val,
        /// The value installed by the store half.
        new: Val,
    },
    /// `E_i`: spontaneous crash of machine `i`.
    Crash {
        /// The crashing machine `i`.
        machine: MachineId,
    },
}

impl Label {
    /// Convenience constructor for store labels.
    pub fn store(kind: StoreKind, by: MachineId, loc: Loc, val: Val) -> Self {
        Label::Store { kind, by, loc, val }
    }

    /// Convenience constructor for `LStore_i(x,v)`.
    pub fn lstore(by: MachineId, loc: Loc, val: Val) -> Self {
        Label::store(StoreKind::Local, by, loc, val)
    }

    /// Convenience constructor for `RStore_i(x,v)`.
    pub fn rstore(by: MachineId, loc: Loc, val: Val) -> Self {
        Label::store(StoreKind::Remote, by, loc, val)
    }

    /// Convenience constructor for `MStore_i(x,v)`.
    pub fn mstore(by: MachineId, loc: Loc, val: Val) -> Self {
        Label::store(StoreKind::Memory, by, loc, val)
    }

    /// Convenience constructor for `Load_i(x,v)`.
    pub fn load(by: MachineId, loc: Loc, val: Val) -> Self {
        Label::Load { by, loc, val }
    }

    /// Convenience constructor for `LFlush_i(x)`.
    pub fn lflush(by: MachineId, loc: Loc) -> Self {
        Label::Flush {
            kind: FlushKind::Local,
            by,
            loc,
        }
    }

    /// Convenience constructor for `RFlush_i(x)`.
    pub fn rflush(by: MachineId, loc: Loc) -> Self {
        Label::Flush {
            kind: FlushKind::Remote,
            by,
            loc,
        }
    }

    /// Convenience constructor for `GPF_i`.
    pub fn gpf(by: MachineId) -> Self {
        Label::Gpf { by }
    }

    /// Convenience constructor for RMW labels.
    pub fn rmw(kind: StoreKind, by: MachineId, loc: Loc, old: Val, new: Val) -> Self {
        Label::Rmw {
            kind,
            by,
            loc,
            old,
            new,
        }
    }

    /// Convenience constructor for `E_i`.
    pub fn crash(machine: MachineId) -> Self {
        Label::Crash { machine }
    }

    /// The machine that emitted this label, or `None` for crashes (which
    /// are environment events, not emitted actions).
    pub fn issuer(&self) -> Option<MachineId> {
        match *self {
            Label::Store { by, .. }
            | Label::Load { by, .. }
            | Label::Flush { by, .. }
            | Label::Gpf { by }
            | Label::Rmw { by, .. } => Some(by),
            Label::Crash { .. } => None,
        }
    }

    /// The location this label touches, if it is location-specific.
    pub fn loc(&self) -> Option<Loc> {
        match *self {
            Label::Store { loc, .. }
            | Label::Load { loc, .. }
            | Label::Flush { loc, .. }
            | Label::Rmw { loc, .. } => Some(loc),
            Label::Gpf { .. } | Label::Crash { .. } => None,
        }
    }

    /// Which primitive class this label belongs to (for topology checks).
    pub fn primitive(&self) -> Primitive {
        match *self {
            Label::Store { kind, .. } => match kind {
                StoreKind::Local => Primitive::LStore,
                StoreKind::Remote => Primitive::RStore,
                StoreKind::Memory => Primitive::MStore,
            },
            Label::Load { .. } => Primitive::Load,
            Label::Flush {
                kind: FlushKind::Local,
                ..
            } => Primitive::LFlush,
            Label::Flush {
                kind: FlushKind::Remote,
                ..
            } => Primitive::RFlush,
            Label::Gpf { .. } => Primitive::Gpf,
            Label::Rmw { kind, .. } => match kind {
                StoreKind::Local => Primitive::LRmw,
                StoreKind::Remote => Primitive::RRmw,
                StoreKind::Memory => Primitive::MRmw,
            },
            Label::Crash { .. } => Primitive::Crash,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Label::Store { kind, by, loc, val } => {
                write!(f, "{kind}Store_{by}({loc}, {val})")
            }
            Label::Load { by, loc, val } => write!(f, "Load_{by}({loc}, {val})"),
            Label::Flush { kind, by, loc } => write!(f, "{kind}Flush_{by}({loc})"),
            Label::Gpf { by } => write!(f, "GPF_{by}"),
            Label::Rmw {
                kind,
                by,
                loc,
                old,
                new,
            } => write!(f, "{kind}-RMW_{by}({loc}, {old}, {new})"),
            Label::Crash { machine } => write!(f, "E_{machine}"),
        }
    }
}

/// The primitive classes of CXL0, used for topology capability checks (§4)
/// and for the Table-1 / Figure-5 experiment axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Primitive {
    /// The single load primitive.
    Load,
    /// Local store.
    LStore,
    /// Remote store.
    RStore,
    /// Memory store.
    MStore,
    /// Local flush.
    LFlush,
    /// Remote flush.
    RFlush,
    /// Global persistent flush.
    Gpf,
    /// RMW with local-store strength.
    LRmw,
    /// RMW with remote-store strength.
    RRmw,
    /// RMW with memory-store strength.
    MRmw,
    /// Machine crash (an environment event; always "available").
    Crash,
}

impl Primitive {
    /// All machine-issued primitives (excludes [`Primitive::Crash`]).
    pub const ISSUED: [Primitive; 10] = [
        Primitive::Load,
        Primitive::LStore,
        Primitive::RStore,
        Primitive::MStore,
        Primitive::LFlush,
        Primitive::RFlush,
        Primitive::Gpf,
        Primitive::LRmw,
        Primitive::RRmw,
        Primitive::MRmw,
    ];
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Primitive::Load => "Load",
            Primitive::LStore => "LStore",
            Primitive::RStore => "RStore",
            Primitive::MStore => "MStore",
            Primitive::LFlush => "LFlush",
            Primitive::RFlush => "RFlush",
            Primitive::Gpf => "GPF",
            Primitive::LRmw => "L-RMW",
            Primitive::RRmw => "R-RMW",
            Primitive::MRmw => "M-RMW",
            Primitive::Crash => "Crash",
        };
        f.write_str(s)
    }
}

/// A silent (`τ`) propagation step (§3.3, *Propagation steps*).
///
/// These model the nondeterministic cache-eviction behavior of the system:
/// values drift "horizontally" toward the owner's cache and "vertically"
/// from the owner's cache into the owner's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SilentStep {
    /// `Propagate-C-C`: move the value of `loc` from machine `from`'s cache
    /// to the owner's cache (requires `from ≠ loc.owner`).
    CacheToCache {
        /// The non-owner machine whose cache currently holds the value.
        from: MachineId,
        /// The location being propagated.
        loc: Loc,
    },
    /// `Propagate-C-M`: write the value of `loc` back from the owner's
    /// cache into the owner's memory, invalidating every cache.
    CacheToMemory {
        /// The location being written back.
        loc: Loc,
    },
}

impl SilentStep {
    /// The location moved by this step.
    pub fn loc(&self) -> Loc {
        match *self {
            SilentStep::CacheToCache { loc, .. } | SilentStep::CacheToMemory { loc } => loc,
        }
    }
}

impl fmt::Display for SilentStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SilentStep::CacheToCache { from, loc } => {
                write!(f, "τ[C-C {from}→{} {loc}]", loc.owner)
            }
            SilentStep::CacheToMemory { loc } => write!(f, "τ[C-M {loc}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x1() -> Loc {
        Loc::new(MachineId(1), 0)
    }

    #[test]
    fn display_forms_match_paper_notation() {
        assert_eq!(
            Label::lstore(MachineId(0), x1(), Val(1)).to_string(),
            "LStore_m0(x[m1:a0], 1)"
        );
        assert_eq!(
            Label::load(MachineId(2), x1(), Val(0)).to_string(),
            "Load_m2(x[m1:a0], 0)"
        );
        assert_eq!(
            Label::rflush(MachineId(0), x1()).to_string(),
            "RFlush_m0(x[m1:a0])"
        );
        assert_eq!(Label::gpf(MachineId(0)).to_string(), "GPF_m0");
        assert_eq!(Label::crash(MachineId(1)).to_string(), "E_m1");
        assert_eq!(
            Label::rmw(StoreKind::Local, MachineId(0), x1(), Val(0), Val(1)).to_string(),
            "L-RMW_m0(x[m1:a0], 0, 1)"
        );
    }

    #[test]
    fn issuer_and_loc_accessors() {
        let l = Label::mstore(MachineId(0), x1(), Val(3));
        assert_eq!(l.issuer(), Some(MachineId(0)));
        assert_eq!(l.loc(), Some(x1()));
        assert_eq!(Label::crash(MachineId(1)).issuer(), None);
        assert_eq!(Label::gpf(MachineId(0)).loc(), None);
    }

    #[test]
    fn primitive_classification() {
        assert_eq!(
            Label::rstore(MachineId(0), x1(), Val(1)).primitive(),
            Primitive::RStore
        );
        assert_eq!(
            Label::lflush(MachineId(0), x1()).primitive(),
            Primitive::LFlush
        );
        assert_eq!(
            Label::rmw(StoreKind::Memory, MachineId(0), x1(), Val(0), Val(1)).primitive(),
            Primitive::MRmw
        );
        assert_eq!(Label::crash(MachineId(0)).primitive(), Primitive::Crash);
    }

    #[test]
    fn silent_step_display() {
        let s = SilentStep::CacheToCache {
            from: MachineId(0),
            loc: x1(),
        };
        assert_eq!(s.to_string(), "τ[C-C m0→m1 x[m1:a0]]");
        assert_eq!(s.loc(), x1());
        let v = SilentStep::CacheToMemory { loc: x1() };
        assert_eq!(v.to_string(), "τ[C-M x[m1:a0]]");
    }

    #[test]
    fn issued_primitives_exclude_crash() {
        assert!(!Primitive::ISSUED.contains(&Primitive::Crash));
        assert_eq!(Primitive::ISSUED.len(), 10);
    }
}
