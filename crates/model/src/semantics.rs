//! The operational semantics of CXL0 (Figure 2 of the paper), plus the RMW
//! rules of §3.3 and the variant rules of §3.5.
//!
//! [`Semantics::apply`] implements the *visible* transition relation
//! `γ —α→ γ′` for a single label `α` with **no** interleaved silent steps;
//! [`Semantics::silent_steps`] enumerates the enabled `τ` propagation
//! steps. The `cxl0-explore` crate builds the full `γ ⟹ γ′` relation
//! (labels interleaved with `τ*`) on top of these.
//!
//! Blocking rules (`LFlush`, `RFlush`, `GPF`) are modeled exactly as in the
//! paper: the step is only enabled once its precondition holds, and the
//! precondition is established by the nondeterministic propagation steps —
//! the same technique used for `MFENCE` in operational x86-TSO models.

use std::fmt;

use crate::config::{MemoryKind, SystemConfig};
use crate::ids::{Loc, MachineId, Val};
use crate::label::{FlushKind, Label, SilentStep, StoreKind};
use crate::state::State;
use crate::topology::Topology;
use crate::variant::ModelVariant;

/// Why a label could not be applied in a given state.
///
/// `Blocked` and `ValueMismatch` are *normal* outcomes during exploration
/// (the interleaving simply cannot produce the requested observation);
/// `UnknownLocation`, `UnknownMachine` and `NotAllowed` indicate an
/// ill-formed program for the configuration/topology at hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// A blocking precondition does not (yet) hold — e.g. `LFlush_i(x)`
    /// requires `C_i(x) = ⊥`.
    Blocked {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A `Load` or `Rmw` label specifies a value different from the unique
    /// value visible in this state.
    ValueMismatch {
        /// The value the label claims to observe.
        expected: Val,
        /// The value actually visible in the state.
        actual: Val,
    },
    /// The label refers to a location outside the configuration.
    UnknownLocation {
        /// The offending location.
        loc: Loc,
    },
    /// The label refers to a machine outside the configuration.
    UnknownMachine {
        /// The offending machine.
        machine: MachineId,
    },
    /// The topology in force does not grant the issuer this primitive (§4).
    NotAllowed {
        /// Name of the topology that rejected the label.
        topology: &'static str,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Blocked { reason } => write!(f, "step blocked: {reason}"),
            StepError::ValueMismatch { expected, actual } => {
                write!(f, "load observes {actual}, label expects {expected}")
            }
            StepError::UnknownLocation { loc } => write!(f, "unknown location {loc}"),
            StepError::UnknownMachine { machine } => write!(f, "unknown machine {machine}"),
            StepError::NotAllowed { topology } => {
                write!(f, "primitive not available under topology {topology}")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// Result alias for single-step application.
pub type StepResult = Result<State, StepError>;

/// The CXL0 transition system for a fixed configuration, variant and
/// (optional) topology restriction.
///
/// # Examples
///
/// ```
/// use cxl0_model::{Semantics, SystemConfig, Label, Loc, MachineId, Val};
///
/// let cfg = SystemConfig::symmetric_nvm(2, 1);
/// let sem = Semantics::new(cfg);
/// let x = Loc::new(MachineId(1), 0);
/// let st = sem.initial_state();
///
/// // MStore goes straight to the owner's memory:
/// let st = sem.apply(&st, &Label::mstore(MachineId(0), x, Val(1)))?;
/// assert_eq!(st.memory(x), Val(1));
///
/// // ... so a crash of the owner does not lose it (memory is NVM):
/// let st = sem.apply(&st, &Label::crash(MachineId(1)))?;
/// let st = sem.apply(&st, &Label::load(MachineId(0), x, Val(1)))?;
/// assert_eq!(st.memory(x), Val(1));
/// # Ok::<(), cxl0_model::StepError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Semantics {
    cfg: SystemConfig,
    variant: ModelVariant,
    topology: Option<Topology>,
}

impl Semantics {
    /// Base-variant semantics with no topology restriction.
    pub fn new(cfg: SystemConfig) -> Self {
        Semantics {
            cfg,
            variant: ModelVariant::Base,
            topology: None,
        }
    }

    /// Semantics under the given model variant.
    pub fn with_variant(cfg: SystemConfig, variant: ModelVariant) -> Self {
        Semantics {
            cfg,
            variant,
            topology: None,
        }
    }

    /// Restricts the available primitives to those granted by `topology`.
    ///
    /// # Panics
    ///
    /// Panics if the topology was built for a different machine count.
    pub fn restricted(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.num_machines(),
            self.cfg.num_machines(),
            "topology machine count must match the configuration"
        );
        self.topology = Some(topology);
        self
    }

    /// The configuration this semantics operates over.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The variant in force.
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// The topology restriction, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The initial state for this configuration.
    pub fn initial_state(&self) -> State {
        State::initial(&self.cfg)
    }

    fn check_loc(&self, loc: Loc) -> Result<(), StepError> {
        if self.cfg.contains_loc(loc) {
            Ok(())
        } else {
            Err(StepError::UnknownLocation { loc })
        }
    }

    fn check_machine(&self, m: MachineId) -> Result<(), StepError> {
        if m.index() < self.cfg.num_machines() {
            Ok(())
        } else {
            Err(StepError::UnknownMachine { machine: m })
        }
    }

    fn check_topology(&self, label: &Label) -> Result<(), StepError> {
        if let (Some(topo), Some(by)) = (&self.topology, label.issuer()) {
            if !topo.allows(by, label.primitive()) {
                return Err(StepError::NotAllowed {
                    topology: topo.name(),
                });
            }
        }
        Ok(())
    }

    /// Applies one visible label to `state` (no implicit `τ` steps).
    ///
    /// # Errors
    ///
    /// See [`StepError`]; `Blocked` / `ValueMismatch` mean "not enabled
    /// here", which explorers treat as a dead branch rather than a fault.
    pub fn apply(&self, state: &State, label: &Label) -> StepResult {
        self.check_topology(label)?;
        match *label {
            Label::Store { kind, by, loc, val } => self.apply_store(state, kind, by, loc, val),
            Label::Load { by, loc, val } => self.apply_load(state, by, loc, val),
            Label::Flush { kind, by, loc } => self.apply_flush(state, kind, by, loc),
            Label::Gpf { by } => self.apply_gpf(state, by),
            Label::Rmw {
                kind,
                by,
                loc,
                old,
                new,
            } => self.apply_rmw(state, kind, by, loc, old, new),
            Label::Crash { machine } => self.apply_crash(state, machine),
        }
    }

    /// LSTORE / RSTORE / MSTORE (Fig. 2).
    fn apply_store(
        &self,
        state: &State,
        kind: StoreKind,
        by: MachineId,
        loc: Loc,
        val: Val,
    ) -> StepResult {
        self.check_machine(by)?;
        self.check_loc(loc)?;
        let mut next = state.clone();
        match kind {
            // LSTORE: C'_i = C_i[x↦v]; ∀j≠i. C'_j = C_j[x↦⊥].
            StoreKind::Local => {
                next.invalidate_all_except(by, loc);
                next.set_cache(by, loc, val);
            }
            // RSTORE: C'_k = C_k[x↦v]; ∀j≠k. C'_j = C_j[x↦⊥]  (k = owner).
            StoreKind::Remote => {
                let k = loc.owner;
                next.invalidate_all_except(k, loc);
                next.set_cache(k, loc, val);
            }
            // MSTORE: M'_k = M_k[x↦v]; ∀j. C'_j = C_j[x↦⊥].
            StoreKind::Memory => {
                next.invalidate_all_caches(loc);
                next.set_memory(loc, val);
            }
        }
        Ok(next)
    }

    /// LOAD-from-C / LOAD-from-M (Fig. 2), or their LWB replacements (§3.5).
    fn apply_load(&self, state: &State, by: MachineId, loc: Loc, val: Val) -> StepResult {
        self.check_machine(by)?;
        self.check_loc(loc)?;
        match self.variant {
            ModelVariant::Base | ModelVariant::Psn => {
                if let Some(v) = state.cached_value(loc) {
                    // LOAD-from-C: read from any cache holding a valid value
                    // and copy it into the issuer's cache (this copy is what
                    // makes a later LFlush by the issuer meaningful).
                    if v != val {
                        return Err(StepError::ValueMismatch {
                            expected: val,
                            actual: v,
                        });
                    }
                    let mut next = state.clone();
                    next.set_cache(by, loc, v);
                    Ok(next)
                } else {
                    // LOAD-from-M: all caches invalid; read the owner's memory.
                    let v = state.memory(loc);
                    if v != val {
                        return Err(StepError::ValueMismatch {
                            expected: val,
                            actual: v,
                        });
                    }
                    Ok(state.clone())
                }
            }
            ModelVariant::Lwb => {
                if let Some(v) = state.cache(by, loc) {
                    // LOAD-from-C(LWB): only a hit in the issuer's own cache
                    // may be served from cache; the state is unchanged.
                    if v != val {
                        return Err(StepError::ValueMismatch {
                            expected: val,
                            actual: v,
                        });
                    }
                    Ok(state.clone())
                } else if state.no_cache_holds(loc) {
                    // LOAD-from-M, as in the base model.
                    let v = state.memory(loc);
                    if v != val {
                        return Err(StepError::ValueMismatch {
                            expected: val,
                            actual: v,
                        });
                    }
                    Ok(state.clone())
                } else {
                    // Some other cache holds the line: the load blocks until
                    // propagation drains it to the owner's memory.
                    Err(StepError::Blocked {
                        reason: "LWB load must wait until no other cache holds the line",
                    })
                }
            }
        }
    }

    /// LFLUSH / RFLUSH (Fig. 2): pure blocking preconditions.
    fn apply_flush(&self, state: &State, kind: FlushKind, by: MachineId, loc: Loc) -> StepResult {
        self.check_machine(by)?;
        self.check_loc(loc)?;
        match kind {
            FlushKind::Local => {
                if state.cache(by, loc).is_some() {
                    Err(StepError::Blocked {
                        reason: "LFlush requires C_i(x) = ⊥",
                    })
                } else {
                    Ok(state.clone())
                }
            }
            FlushKind::Remote => {
                if state.no_cache_holds(loc) {
                    Ok(state.clone())
                } else {
                    Err(StepError::Blocked {
                        reason: "RFlush requires ∀j. C_j(x) = ⊥",
                    })
                }
            }
        }
    }

    /// GLOBAL-PERSISTENT-FLUSH (Fig. 2): blocks until all caches are empty.
    fn apply_gpf(&self, state: &State, by: MachineId) -> StepResult {
        self.check_machine(by)?;
        if state.all_caches_empty() {
            Ok(state.clone())
        } else {
            Err(StepError::Blocked {
                reason: "GPF requires ∀j,x. C_j(x) = ⊥",
            })
        }
    }

    /// The six RMW rules (§3.3): an atomic load (from cache or, if all
    /// caches are invalid, from the owner's memory) combined with a store
    /// of the given strength, with no interference in between.
    fn apply_rmw(
        &self,
        state: &State,
        kind: StoreKind,
        by: MachineId,
        loc: Loc,
        old: Val,
        new: Val,
    ) -> StepResult {
        self.check_machine(by)?;
        self.check_loc(loc)?;
        let actual = state.visible_value(loc);
        if actual != old {
            return Err(StepError::ValueMismatch {
                expected: old,
                actual,
            });
        }
        // The store half mirrors apply_store; the load half leaves no
        // separate trace because the store immediately overwrites/invalidates.
        let mut next = state.clone();
        match kind {
            StoreKind::Local => {
                next.invalidate_all_except(by, loc);
                next.set_cache(by, loc, new);
            }
            StoreKind::Remote => {
                let k = loc.owner;
                next.invalidate_all_except(k, loc);
                next.set_cache(k, loc, new);
            }
            StoreKind::Memory => {
                next.invalidate_all_caches(loc);
                next.set_memory(loc, new);
            }
        }
        Ok(next)
    }

    /// CRASH (Fig. 2) or CRASH(PSN) (§3.5). Crashes every machine in the
    /// failure domain of `machine` (usually just `machine` itself).
    fn apply_crash(&self, state: &State, machine: MachineId) -> StepResult {
        self.check_machine(machine)?;
        let mut next = state.clone();
        for m in self.cfg.failure_domain(machine) {
            next.clear_cache_of(m);
            if self.cfg.machine(m).memory == MemoryKind::Volatile {
                next.zero_memory_of(m);
            }
            if self.variant == ModelVariant::Psn {
                next.drop_owned_from_all_caches(m);
            }
        }
        Ok(next)
    }

    /// Enumerates the silent propagation steps enabled in `state`
    /// (Propagate-C-C and Propagate-C-M of Fig. 2), respecting a topology's
    /// `Propagate-C-C` exclusion if one is installed.
    pub fn silent_steps(&self, state: &State) -> Vec<SilentStep> {
        let mut out = Vec::new();
        let cc_allowed = self.topology.as_ref().is_none_or(Topology::allows_prop_cc);
        for i in 0..state.num_machines() {
            let m = MachineId(i);
            for (&loc, _) in state.cache_of(m).iter() {
                if loc.owner == m {
                    // Propagate-C-M: owner's cache → owner's memory.
                    out.push(SilentStep::CacheToMemory { loc });
                } else if cc_allowed {
                    // Propagate-C-C: non-owner's cache → owner's cache.
                    out.push(SilentStep::CacheToCache { from: m, loc });
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Applies one silent propagation step.
    ///
    /// # Errors
    ///
    /// Returns `Blocked` if the step is not enabled in `state`.
    pub fn apply_silent(&self, state: &State, step: &SilentStep) -> StepResult {
        match *step {
            SilentStep::CacheToCache { from, loc } => {
                if from == loc.owner {
                    return Err(StepError::Blocked {
                        reason: "Propagate-C-C requires i ≠ k",
                    });
                }
                let Some(v) = state.cache(from, loc) else {
                    return Err(StepError::Blocked {
                        reason: "Propagate-C-C requires C_i(x) ≠ ⊥",
                    });
                };
                let mut next = state.clone();
                next.invalidate_cache(from, loc);
                next.set_cache(loc.owner, loc, v);
                Ok(next)
            }
            SilentStep::CacheToMemory { loc } => {
                let Some(v) = state.cache(loc.owner, loc) else {
                    return Err(StepError::Blocked {
                        reason: "Propagate-C-M requires C_k(x) ≠ ⊥",
                    });
                };
                let mut next = state.clone();
                next.invalidate_all_caches(loc);
                next.set_memory(loc, v);
                Ok(next)
            }
        }
    }

    /// The unique value a load of `loc` would observe in `state`
    /// (cached value if any, else the owner's memory).
    ///
    /// Under the LWB variant a load may additionally be *blocked*; this
    /// accessor reports the would-be value regardless.
    pub fn load_value(&self, state: &State, loc: Loc) -> Val {
        state.visible_value(loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sem2() -> Semantics {
        Semantics::new(SystemConfig::symmetric_nvm(2, 1))
    }

    fn x(owner: usize) -> Loc {
        Loc::new(MachineId(owner), 0)
    }

    const M0: MachineId = MachineId(0);
    const M1: MachineId = MachineId(1);

    #[test]
    fn lstore_writes_issuer_cache_and_invalidates_others() {
        let sem = sem2();
        let st = sem.initial_state();
        // Preload the other cache so we can observe invalidation.
        let st = sem.apply(&st, &Label::lstore(M1, x(1), Val(9))).unwrap();
        let st = sem.apply(&st, &Label::lstore(M0, x(1), Val(1))).unwrap();
        assert_eq!(st.cache(M0, x(1)), Some(Val(1)));
        assert_eq!(st.cache(M1, x(1)), None);
        assert_eq!(st.memory(x(1)), Val::ZERO);
    }

    #[test]
    fn rstore_writes_owner_cache() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::rstore(M0, x(1), Val(1))).unwrap();
        assert_eq!(st.cache(M1, x(1)), Some(Val(1)));
        assert_eq!(st.cache(M0, x(1)), None);
        assert_eq!(st.memory(x(1)), Val::ZERO);
    }

    #[test]
    fn rstore_by_owner_equals_lstore_by_owner() {
        let sem = sem2();
        let st = sem.initial_state();
        let a = sem.apply(&st, &Label::rstore(M1, x(1), Val(1))).unwrap();
        let b = sem.apply(&st, &Label::lstore(M1, x(1), Val(1))).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mstore_writes_memory_and_invalidates_all() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::lstore(M0, x(1), Val(5))).unwrap();
        let st = sem.apply(&st, &Label::mstore(M0, x(1), Val(7))).unwrap();
        assert!(st.no_cache_holds(x(1)));
        assert_eq!(st.memory(x(1)), Val(7));
    }

    #[test]
    fn load_from_cache_copies_into_issuer_cache() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::lstore(M0, x(1), Val(3))).unwrap();
        let st = sem.apply(&st, &Label::load(M1, x(1), Val(3))).unwrap();
        assert_eq!(st.cache(M1, x(1)), Some(Val(3)));
        assert_eq!(st.cache(M0, x(1)), Some(Val(3)));
    }

    #[test]
    fn load_from_memory_leaves_state_unchanged() {
        let sem = sem2();
        let st = sem.initial_state();
        let next = sem.apply(&st, &Label::load(M0, x(1), Val(0))).unwrap();
        assert_eq!(next, st);
    }

    #[test]
    fn load_value_mismatch_is_reported() {
        let sem = sem2();
        let st = sem.initial_state();
        let err = sem.apply(&st, &Label::load(M0, x(1), Val(1))).unwrap_err();
        assert_eq!(
            err,
            StepError::ValueMismatch {
                expected: Val(1),
                actual: Val(0)
            }
        );
    }

    #[test]
    fn lflush_blocks_until_local_line_drained() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::lstore(M0, x(1), Val(1))).unwrap();
        let err = sem.apply(&st, &Label::lflush(M0, x(1))).unwrap_err();
        assert!(matches!(err, StepError::Blocked { .. }));
        // Drain by propagation, then the flush is a no-op step.
        let steps = sem.silent_steps(&st);
        assert_eq!(steps.len(), 1);
        let st = sem.apply_silent(&st, &steps[0]).unwrap();
        assert!(sem.apply(&st, &Label::lflush(M0, x(1))).is_ok());
        // The value moved to the owner's cache.
        assert_eq!(st.cache(M1, x(1)), Some(Val(1)));
    }

    #[test]
    fn rflush_blocks_until_no_cache_holds() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::lstore(M0, x(1), Val(1))).unwrap();
        assert!(matches!(
            sem.apply(&st, &Label::rflush(M0, x(1))),
            Err(StepError::Blocked { .. })
        ));
        // Two propagation steps drain to memory.
        let st = sem
            .apply_silent(
                &st,
                &SilentStep::CacheToCache {
                    from: M0,
                    loc: x(1),
                },
            )
            .unwrap();
        assert!(matches!(
            sem.apply(&st, &Label::rflush(M0, x(1))),
            Err(StepError::Blocked { .. })
        ));
        let st = sem
            .apply_silent(&st, &SilentStep::CacheToMemory { loc: x(1) })
            .unwrap();
        assert!(sem.apply(&st, &Label::rflush(M0, x(1))).is_ok());
        assert_eq!(st.memory(x(1)), Val(1));
    }

    #[test]
    fn gpf_requires_globally_empty_caches() {
        let sem = sem2();
        let st = sem.initial_state();
        assert!(sem.apply(&st, &Label::gpf(M0)).is_ok());
        let st = sem.apply(&st, &Label::lstore(M0, x(0), Val(1))).unwrap();
        assert!(matches!(
            sem.apply(&st, &Label::gpf(M0)),
            Err(StepError::Blocked { .. })
        ));
    }

    #[test]
    fn crash_clears_cache_and_keeps_nvm() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::mstore(M0, x(0), Val(4))).unwrap();
        let st = sem.apply(&st, &Label::lstore(M0, x(0), Val(5))).unwrap();
        let st = sem.apply(&st, &Label::crash(M0)).unwrap();
        assert!(st.cache_of(M0).is_empty());
        assert_eq!(st.memory(x(0)), Val(4)); // NVM survives
    }

    #[test]
    fn crash_zeroes_volatile_memory() {
        let cfg = SystemConfig::symmetric_volatile(2, 1);
        let sem = Semantics::new(cfg);
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::mstore(M0, x(0), Val(4))).unwrap();
        let st = sem.apply(&st, &Label::crash(M0)).unwrap();
        assert_eq!(st.memory(x(0)), Val::ZERO);
    }

    #[test]
    fn psn_crash_poisons_remote_copies_of_owned_lines() {
        let cfg = SystemConfig::symmetric_nvm(2, 1);
        let sem = Semantics::with_variant(cfg, ModelVariant::Psn);
        let st = sem.initial_state();
        // m1 caches a line owned by m0 (via RStore from m1... use lstore by m1).
        let st = sem.apply(&st, &Label::lstore(M1, x(0), Val(1))).unwrap();
        let st = sem.apply(&st, &Label::crash(M0)).unwrap();
        // Under PSN, m1's copy of m0's line is gone.
        assert_eq!(st.cache(M1, x(0)), None);
        // Under Base it would have survived:
        let base = sem2();
        let st2 = base.initial_state();
        let st2 = base.apply(&st2, &Label::lstore(M1, x(0), Val(1))).unwrap();
        let st2 = base.apply(&st2, &Label::crash(M0)).unwrap();
        assert_eq!(st2.cache(M1, x(0)), Some(Val(1)));
    }

    #[test]
    fn lwb_load_blocks_on_foreign_cache_hit() {
        let cfg = SystemConfig::symmetric_nvm(2, 1);
        let sem = Semantics::with_variant(cfg, ModelVariant::Lwb);
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::lstore(M0, x(1), Val(1))).unwrap();
        // m1 loading x(1): m0's cache holds it → blocked under LWB.
        assert!(matches!(
            sem.apply(&st, &Label::load(M1, x(1), Val(1))),
            Err(StepError::Blocked { .. })
        ));
        // m0 loading its own cached copy is fine and leaves state unchanged.
        let same = sem.apply(&st, &Label::load(M0, x(1), Val(1))).unwrap();
        assert_eq!(same, st);
    }

    #[test]
    fn rmw_success_and_mismatch() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::rmw(StoreKind::Local, M0, x(1), Val(0), Val(1)))
            .unwrap();
        assert_eq!(st.cache(M0, x(1)), Some(Val(1)));
        let err = sem
            .apply(
                &st,
                &Label::rmw(StoreKind::Memory, M1, x(1), Val(0), Val(2)),
            )
            .unwrap_err();
        assert!(matches!(err, StepError::ValueMismatch { .. }));
        let st = sem
            .apply(
                &st,
                &Label::rmw(StoreKind::Memory, M1, x(1), Val(1), Val(2)),
            )
            .unwrap();
        assert_eq!(st.memory(x(1)), Val(2));
        assert!(st.no_cache_holds(x(1)));
    }

    #[test]
    fn silent_steps_enumeration() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::lstore(M0, x(1), Val(1))).unwrap();
        let st = sem.apply(&st, &Label::lstore(M0, x(0), Val(2))).unwrap();
        let steps = sem.silent_steps(&st);
        // x(1) in m0's cache (non-owner → C-C), x(0) in m0's cache (owner → C-M).
        assert_eq!(steps.len(), 2);
        assert!(steps.contains(&SilentStep::CacheToCache {
            from: M0,
            loc: x(1)
        }));
        assert!(steps.contains(&SilentStep::CacheToMemory { loc: x(0) }));
    }

    #[test]
    fn propagation_preserves_invariant() {
        let sem = sem2();
        let mut st = sem.initial_state();
        st = sem.apply(&st, &Label::lstore(M0, x(1), Val(1))).unwrap();
        st = sem.apply(&st, &Label::load(M1, x(1), Val(1))).unwrap();
        // Both caches hold x(1) = 1 now.
        assert_eq!(st.holders(x(1)).len(), 2);
        st.check_invariant().unwrap();
        let st2 = sem
            .apply_silent(
                &st,
                &SilentStep::CacheToCache {
                    from: M0,
                    loc: x(1),
                },
            )
            .unwrap();
        st2.check_invariant().unwrap();
        assert_eq!(st2.holders(x(1)), vec![M1]);
        let st3 = sem
            .apply_silent(&st2, &SilentStep::CacheToMemory { loc: x(1) })
            .unwrap();
        assert!(st3.no_cache_holds(x(1)));
        assert_eq!(st3.memory(x(1)), Val(1));
    }

    #[test]
    fn unknown_location_and_machine_rejected() {
        let sem = sem2();
        let st = sem.initial_state();
        assert!(matches!(
            sem.apply(&st, &Label::load(M0, Loc::new(MachineId(7), 0), Val(0))),
            Err(StepError::UnknownLocation { .. })
        ));
        assert!(matches!(
            sem.apply(&st, &Label::load(MachineId(7), x(0), Val(0))),
            Err(StepError::UnknownMachine { .. })
        ));
    }

    #[test]
    fn crash_group_crashes_together() {
        use crate::config::MachineConfig;
        let mut a = MachineConfig::non_volatile(1);
        a.crash_group = vec![MachineId(1)];
        let mut b = MachineConfig::volatile(1);
        b.crash_group = vec![MachineId(0)];
        let cfg = SystemConfig::new(vec![a, b]);
        let sem = Semantics::new(cfg);
        let st = sem.initial_state();
        let st = sem.apply(&st, &Label::mstore(M0, x(1), Val(3))).unwrap();
        let st = sem.apply(&st, &Label::lstore(M1, x(0), Val(2))).unwrap();
        let st = sem.apply(&st, &Label::crash(M0)).unwrap();
        // Both machines lost their caches; m1's volatile memory reset.
        assert!(st.cache_of(M1).is_empty());
        assert_eq!(st.memory(x(1)), Val::ZERO);
    }
}
