//! Traces: finite sequences of visible labels, with pretty-printing in the
//! paper's litmus-test notation and small construction helpers.
//!
//! **Naming note.** A [`Trace`] here is a *model-level execution*: the
//! sequence of visible labels (loads, stores, flushes, crashes) a CXL0
//! program emits, the object the operational semantics and litmus tests
//! reason about. It is unrelated to `cxl0_runtime::trace`, the runtime's
//! opt-in *observability* layer (op-latency spans, histograms, recovery
//! telemetry, Chrome/JSONL export). When a label sequence is meant, it is
//! this type; when profiling output is meant, it is the runtime tracer.

use std::fmt;

use crate::label::Label;

/// A finite sequence of visible labels, e.g. a litmus test body.
///
/// # Examples
///
/// ```
/// use cxl0_model::{Trace, Label, Loc, MachineId, Val};
/// let x = Loc::new(MachineId(0), 0);
/// let t = Trace::from_labels([
///     Label::rstore(MachineId(0), x, Val(1)),
///     Label::crash(MachineId(0)),
///     Label::load(MachineId(0), x, Val(0)),
/// ]);
/// assert_eq!(t.len(), 3);
/// assert!(t.to_string().contains("E_m0"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Trace {
    labels: Vec<Label>,
}

impl Trace {
    /// The empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from any label iterator.
    pub fn from_labels<I: IntoIterator<Item = Label>>(labels: I) -> Self {
        Trace {
            labels: labels.into_iter().collect(),
        }
    }

    /// Appends a label (builder style).
    pub fn then(mut self, label: Label) -> Self {
        self.labels.push(label);
        self
    }

    /// Appends a label in place.
    pub fn push(&mut self, label: Label) {
        self.labels.push(label);
    }

    /// The labels in order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the trace contains no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterator over the labels.
    pub fn iter(&self) -> std::slice::Iter<'_, Label> {
        self.labels.iter()
    }

    /// Concatenation of two traces.
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Trace { labels }
    }

    /// The trace without its crash events (used by durable-linearizability
    /// style arguments and by visible-trace comparisons).
    pub fn without_crashes(&self) -> Trace {
        Trace {
            labels: self
                .labels
                .iter()
                .filter(|l| !matches!(l, Label::Crash { .. }))
                .copied()
                .collect(),
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl FromIterator<Label> for Trace {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        Trace::from_labels(iter)
    }
}

impl Extend<Label> for Trace {
    fn extend<I: IntoIterator<Item = Label>>(&mut self, iter: I) {
        self.labels.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = Label;
    type IntoIter = std::vec::IntoIter<Label>;
    fn into_iter(self) -> Self::IntoIter {
        self.labels.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Label;
    type IntoIter = std::slice::Iter<'a, Label>;
    fn into_iter(self) -> Self::IntoIter {
        self.labels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Loc, MachineId, Val};

    fn x() -> Loc {
        Loc::new(MachineId(1), 0)
    }

    #[test]
    fn builder_and_accessors() {
        let t = Trace::new()
            .then(Label::lstore(MachineId(0), x(), Val(1)))
            .then(Label::lflush(MachineId(0), x()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.labels()[1], Label::lflush(MachineId(0), x()));
    }

    #[test]
    fn display_joins_with_semicolons() {
        let t = Trace::from_labels([
            Label::mstore(MachineId(0), x(), Val(1)),
            Label::crash(MachineId(1)),
        ]);
        assert_eq!(t.to_string(), "MStore_m0(x[m1:a0], 1); E_m1");
    }

    #[test]
    fn without_crashes_strips_only_crashes() {
        let t = Trace::from_labels([
            Label::lstore(MachineId(0), x(), Val(1)),
            Label::crash(MachineId(1)),
            Label::load(MachineId(0), x(), Val(1)),
        ]);
        let s = t.without_crashes();
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|l| !matches!(l, Label::Crash { .. })));
    }

    #[test]
    fn concat_and_collect() {
        let a = Trace::from_labels([Label::gpf(MachineId(0))]);
        let b: Trace = [Label::crash(MachineId(0))].into_iter().collect();
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        let labels: Vec<_> = (&c).into_iter().copied().collect();
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut t = Trace::new();
        t.extend([Label::gpf(MachineId(0)), Label::crash(MachineId(0))]);
        assert_eq!(t.len(), 2);
    }
}
