//! `CXL0_AF` — the asynchronous-flush extension of CXL0 (§3.2, *Limitations
//! of CXL*).
//!
//! The paper observes that the CXL specification only defines *synchronous*
//! flushes, unlike x86 (`CLFLUSHOPT`/`CLWB` + `SFENCE`) and ARM (`DC.CVAP` +
//! `DSB.SY`), and notes that asynchronous flushes can be added to CXL0
//! "using an additional layer of partially ordered persistency buffers"
//! along the lines of Khyzha & Lahav and Raad et al. This module implements
//! exactly that extension:
//!
//! * each machine `i` gains a **persistency buffer** `P_i ⊆ Loc` of pending
//!   flush requests;
//! * a new non-blocking primitive [`AsyncLabel::AFlush`] enqueues a request
//!   into the issuer's buffer and returns immediately;
//! * a pending request *retires* through a new silent step
//!   ([`AsyncSilentStep::Retire`]) once the line has fully drained to the
//!   owner's memory — the same post-condition as a synchronous `RFlush`;
//! * a new blocking primitive [`AsyncLabel::Barrier`] (the `SFENCE`
//!   analogue) is enabled only once the issuer's buffer is empty;
//! * a machine crash **discards** that machine's buffer: un-retired flush
//!   requests are lost with the machine, which is what makes `AFlush`
//!   strictly weaker than `RFlush` on its own.
//!
//! The headline properties, checked exhaustively by
//! `cxl0-explore::asyncinterp` and the `paper_async` litmus suite:
//!
//! * `AFlush_i(x); Barrier_i` has exactly the outcomes of `RFlush_i(x)`;
//! * `AFlush_i(x)` alone guarantees nothing (litmus A1/A4);
//! * a barrier only waits for the *issuer's* buffer (litmus A6);
//! * `n` stores + `n` `AFlush`es + one `Barrier` persist all `n` lines —
//!   the batching pattern that motivates asynchronous flushes (litmus A5).
//!
//! # Examples
//!
//! ```
//! use cxl0_model::asyncflush::{AsyncLabel, AsyncSemantics};
//! use cxl0_model::{Label, Loc, MachineId, SystemConfig, Val};
//!
//! let sem = AsyncSemantics::new(SystemConfig::symmetric_nvm(2, 1));
//! let x = Loc::new(MachineId(1), 0);
//! let st = sem.initial_state();
//!
//! // AFlush is non-blocking even while the line is still cached:
//! let st = sem.apply(&st, &Label::lstore(MachineId(0), x, Val(1)).into())?;
//! let st = sem.apply(&st, &AsyncLabel::aflush(MachineId(0), x))?;
//! assert!(st.is_pending(MachineId(0), x));
//!
//! // ... but the barrier blocks until the request has retired:
//! assert!(sem.apply(&st, &AsyncLabel::barrier(MachineId(0))).is_err());
//! # Ok::<(), cxl0_model::StepError>(())
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::config::SystemConfig;
use crate::ids::{Loc, MachineId, Val};
use crate::label::{Label, SilentStep};
use crate::semantics::{Semantics, StepError};
use crate::state::State;
use crate::variant::ModelVariant;

/// A visible label of the `CXL0_AF` extension: either a base CXL0 label or
/// one of the two new asynchronous-flush primitives.
///
/// # Examples
///
/// ```
/// use cxl0_model::asyncflush::AsyncLabel;
/// use cxl0_model::{Label, Loc, MachineId, Val};
///
/// let x = Loc::new(MachineId(1), 0);
/// assert_eq!(AsyncLabel::aflush(MachineId(0), x).to_string(), "AFlush_m0(x[m1:a0])");
/// assert_eq!(AsyncLabel::barrier(MachineId(0)).to_string(), "Barrier_m0");
/// let base: AsyncLabel = Label::load(MachineId(0), x, Val(0)).into();
/// assert_eq!(base.to_string(), "Load_m0(x[m1:a0], 0)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AsyncLabel {
    /// Any base CXL0 label (stores, loads, synchronous flushes, GPF, RMWs,
    /// crashes), with its Figure-2 semantics.
    Base(Label),
    /// `AFlush_i(x)`: enqueue an asynchronous flush request for `x` into
    /// machine `i`'s persistency buffer. Never blocks.
    AFlush {
        /// The issuing machine `i`.
        by: MachineId,
        /// The location to be flushed.
        loc: Loc,
    },
    /// `Barrier_i`: the `SFENCE` analogue. Enabled only once every request
    /// in machine `i`'s persistency buffer has retired.
    Barrier {
        /// The issuing machine `i`.
        by: MachineId,
    },
}

impl AsyncLabel {
    /// Convenience constructor for `AFlush_i(x)`.
    pub fn aflush(by: MachineId, loc: Loc) -> Self {
        AsyncLabel::AFlush { by, loc }
    }

    /// Convenience constructor for `Barrier_i`.
    pub fn barrier(by: MachineId) -> Self {
        AsyncLabel::Barrier { by }
    }

    /// The machine that emitted this label, or `None` for crash events.
    pub fn issuer(&self) -> Option<MachineId> {
        match *self {
            AsyncLabel::Base(l) => l.issuer(),
            AsyncLabel::AFlush { by, .. } | AsyncLabel::Barrier { by } => Some(by),
        }
    }

    /// The location this label touches, if it is location-specific.
    pub fn loc(&self) -> Option<Loc> {
        match *self {
            AsyncLabel::Base(l) => l.loc(),
            AsyncLabel::AFlush { loc, .. } => Some(loc),
            AsyncLabel::Barrier { .. } => None,
        }
    }

    /// The wrapped base label, if this is not one of the new primitives.
    pub fn as_base(&self) -> Option<&Label> {
        match self {
            AsyncLabel::Base(l) => Some(l),
            _ => None,
        }
    }
}

impl From<Label> for AsyncLabel {
    fn from(l: Label) -> Self {
        AsyncLabel::Base(l)
    }
}

impl fmt::Display for AsyncLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AsyncLabel::Base(l) => l.fmt(f),
            AsyncLabel::AFlush { by, loc } => write!(f, "AFlush_{by}({loc})"),
            AsyncLabel::Barrier { by } => write!(f, "Barrier_{by}"),
        }
    }
}

/// A state of the `CXL0_AF` extension: the base state `γ = (C, M)` plus a
/// persistency buffer `P_i` per machine.
///
/// Buffers are *sets* rather than sequences: a flush request retires when
/// its line has drained, so two pending requests for the same line are
/// indistinguishable, and requests for different lines retire independently
/// — the "partially ordered" structure the paper alludes to degenerates to
/// per-line unordered requests under CXL0's single-location flushes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsyncState {
    base: State,
    pending: Vec<BTreeSet<Loc>>,
}

impl AsyncState {
    /// The extension of the base initial state with empty buffers.
    pub fn initial(cfg: &SystemConfig) -> Self {
        AsyncState {
            base: State::initial(cfg),
            pending: vec![BTreeSet::new(); cfg.num_machines()],
        }
    }

    /// The underlying base state `(C, M)`.
    pub fn base(&self) -> &State {
        &self.base
    }

    /// Machine `m`'s persistency buffer `P_m`.
    pub fn pending_of(&self, m: MachineId) -> &BTreeSet<Loc> {
        &self.pending[m.index()]
    }

    /// True if machine `m` has a pending flush request for `loc`.
    pub fn is_pending(&self, m: MachineId, loc: Loc) -> bool {
        self.pending[m.index()].contains(&loc)
    }

    /// True if no machine has any pending flush request.
    pub fn all_buffers_empty(&self) -> bool {
        self.pending.iter().all(BTreeSet::is_empty)
    }

    /// `M_k(x)` of the base state, for convenience in assertions.
    pub fn memory(&self, loc: Loc) -> Val {
        self.base.memory(loc)
    }
}

impl fmt::Display for AsyncState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for (i, p) in self.pending.iter().enumerate() {
            if !p.is_empty() {
                write!(f, "\n  P_m{i} = {{")?;
                for (k, loc) in p.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{loc}")?;
                }
                write!(f, "}}")?;
            }
        }
        Ok(())
    }
}

/// A silent step of the `CXL0_AF` extension: base propagation, or the
/// retirement of a pending flush request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AsyncSilentStep {
    /// A base `Propagate-C-C` / `Propagate-C-M` step.
    Base(SilentStep),
    /// Retire machine `by`'s pending request for `loc`. Enabled only once
    /// no cache holds `loc` — i.e. once the line has fully drained to the
    /// owner's memory, the post-condition of a synchronous `RFlush`.
    Retire {
        /// The machine whose buffer holds the request.
        by: MachineId,
        /// The flushed location.
        loc: Loc,
    },
}

impl fmt::Display for AsyncSilentStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AsyncSilentStep::Base(s) => s.fmt(f),
            AsyncSilentStep::Retire { by, loc } => write!(f, "τ[retire {by} {loc}]"),
        }
    }
}

/// The `CXL0_AF` transition system: the base semantics (any
/// [`ModelVariant`]) extended with persistency buffers, `AFlush` and
/// `Barrier`.
///
/// # Examples
///
/// Batching: two stores, two `AFlush`es, one `Barrier` — both lines are
/// persistent once the barrier completes:
///
/// ```
/// use cxl0_model::asyncflush::{AsyncLabel, AsyncSemantics, AsyncSilentStep};
/// use cxl0_model::{Label, Loc, MachineId, SystemConfig, Val};
///
/// let sem = AsyncSemantics::new(SystemConfig::symmetric_nvm(2, 2));
/// let (m0, m1) = (MachineId(0), MachineId(1));
/// let x = Loc::new(m1, 0);
/// let y = Loc::new(m1, 1);
///
/// let mut st = sem.initial_state();
/// for (loc, v) in [(x, 1), (y, 2)] {
///     st = sem.apply(&st, &Label::lstore(m0, loc, Val(v)).into())?;
///     st = sem.apply(&st, &AsyncLabel::aflush(m0, loc))?;
/// }
/// // Drain everything (the explorer does this nondeterministically).
/// loop {
///     let steps = sem.silent_steps(&st);
///     match steps.first() {
///         Some(s) => st = sem.apply_silent(&st, s)?,
///         None => break,
///     }
/// }
/// let st = sem.apply(&st, &AsyncLabel::barrier(m0))?;
/// assert_eq!(st.memory(x), Val(1));
/// assert_eq!(st.memory(y), Val(2));
/// # Ok::<(), cxl0_model::StepError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AsyncSemantics {
    base: Semantics,
}

impl AsyncSemantics {
    /// Base-variant `CXL0_AF` semantics.
    pub fn new(cfg: SystemConfig) -> Self {
        AsyncSemantics {
            base: Semantics::new(cfg),
        }
    }

    /// `CXL0_AF` on top of the given base variant (PSN / LWB).
    pub fn with_variant(cfg: SystemConfig, variant: ModelVariant) -> Self {
        AsyncSemantics {
            base: Semantics::with_variant(cfg, variant),
        }
    }

    /// Wraps an existing base semantics (keeping its variant and topology
    /// restriction).
    pub fn from_base(base: Semantics) -> Self {
        AsyncSemantics { base }
    }

    /// The underlying base semantics.
    pub fn base(&self) -> &Semantics {
        &self.base
    }

    /// The configuration this semantics operates over.
    pub fn config(&self) -> &SystemConfig {
        self.base.config()
    }

    /// The initial state: base initial state with empty buffers.
    pub fn initial_state(&self) -> AsyncState {
        AsyncState::initial(self.base.config())
    }

    /// Applies one visible label.
    ///
    /// # Errors
    ///
    /// As for [`Semantics::apply`]; additionally, `Barrier_i` returns
    /// [`StepError::Blocked`] while machine `i`'s buffer is non-empty.
    pub fn apply(&self, state: &AsyncState, label: &AsyncLabel) -> Result<AsyncState, StepError> {
        match *label {
            AsyncLabel::Base(ref l) => {
                let next_base = self.base.apply(&state.base, l)?;
                let mut pending = state.pending.clone();
                if let Label::Crash { machine } = *l {
                    // The crashed machine's un-retired flush requests die
                    // with it (they lived in volatile processor state).
                    for m in self.base.config().failure_domain(machine) {
                        pending[m.index()].clear();
                    }
                }
                Ok(AsyncState {
                    base: next_base,
                    pending,
                })
            }
            AsyncLabel::AFlush { by, loc } => {
                self.check_machine(by)?;
                if !self.base.config().contains_loc(loc) {
                    return Err(StepError::UnknownLocation { loc });
                }
                let mut next = state.clone();
                next.pending[by.index()].insert(loc);
                Ok(next)
            }
            AsyncLabel::Barrier { by } => {
                self.check_machine(by)?;
                if state.pending[by.index()].is_empty() {
                    Ok(state.clone())
                } else {
                    Err(StepError::Blocked {
                        reason: "Barrier requires the issuer's persistency buffer to be empty",
                    })
                }
            }
        }
    }

    fn check_machine(&self, m: MachineId) -> Result<(), StepError> {
        if m.index() < self.base.config().num_machines() {
            Ok(())
        } else {
            Err(StepError::UnknownMachine { machine: m })
        }
    }

    /// Enumerates the enabled silent steps: base propagation plus retirable
    /// pending requests.
    pub fn silent_steps(&self, state: &AsyncState) -> Vec<AsyncSilentStep> {
        let mut out: Vec<AsyncSilentStep> = self
            .base
            .silent_steps(&state.base)
            .into_iter()
            .map(AsyncSilentStep::Base)
            .collect();
        for (i, buf) in state.pending.iter().enumerate() {
            for &loc in buf {
                if state.base.no_cache_holds(loc) {
                    out.push(AsyncSilentStep::Retire {
                        by: MachineId(i),
                        loc,
                    });
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Applies one silent step.
    ///
    /// # Errors
    ///
    /// Returns `Blocked` if the step is not enabled in `state`.
    pub fn apply_silent(
        &self,
        state: &AsyncState,
        step: &AsyncSilentStep,
    ) -> Result<AsyncState, StepError> {
        match *step {
            AsyncSilentStep::Base(ref s) => {
                let next_base = self.base.apply_silent(&state.base, s)?;
                Ok(AsyncState {
                    base: next_base,
                    pending: state.pending.clone(),
                })
            }
            AsyncSilentStep::Retire { by, loc } => {
                if !state.is_pending(by, loc) {
                    return Err(StepError::Blocked {
                        reason: "Retire requires a pending request",
                    });
                }
                if !state.base.no_cache_holds(loc) {
                    return Err(StepError::Blocked {
                        reason: "Retire requires the line to have drained (∀j. C_j(x) = ⊥)",
                    });
                }
                let mut next = state.clone();
                next.pending[by.index()].remove(&loc);
                Ok(next)
            }
        }
    }

    /// The unique value a load of `loc` would observe in `state`.
    pub fn load_value(&self, state: &AsyncState, loc: Loc) -> Val {
        self.base.load_value(&state.base, loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M0: MachineId = MachineId(0);
    const M1: MachineId = MachineId(1);

    fn sem2() -> AsyncSemantics {
        AsyncSemantics::new(SystemConfig::symmetric_nvm(2, 2))
    }

    fn x(owner: usize) -> Loc {
        Loc::new(MachineId(owner), 0)
    }

    /// Fully drains all propagation and retirement, deterministically.
    fn drain(sem: &AsyncSemantics, mut st: AsyncState) -> AsyncState {
        loop {
            let steps = sem.silent_steps(&st);
            match steps.first() {
                Some(s) => st = sem.apply_silent(&st, s).unwrap(),
                None => return st,
            }
        }
    }

    #[test]
    fn aflush_is_nonblocking_and_enqueues() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        assert!(st.is_pending(M0, x(1)));
        assert_eq!(st.pending_of(M0).len(), 1);
        assert!(st.pending_of(M1).is_empty());
    }

    #[test]
    fn aflush_on_uncached_line_retires_immediately() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        let steps = sem.silent_steps(&st);
        assert_eq!(steps, vec![AsyncSilentStep::Retire { by: M0, loc: x(1) }]);
        let st = sem.apply_silent(&st, &steps[0]).unwrap();
        assert!(st.all_buffers_empty());
    }

    #[test]
    fn barrier_blocks_until_retired() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        assert!(matches!(
            sem.apply(&st, &AsyncLabel::barrier(M0)),
            Err(StepError::Blocked { .. })
        ));
        let st = drain(&sem, st);
        let st = sem.apply(&st, &AsyncLabel::barrier(M0)).unwrap();
        // The drained value is persistent.
        assert_eq!(st.memory(x(1)), Val(1));
    }

    #[test]
    fn barrier_only_waits_for_own_buffer() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        // m1's barrier does not care about m0's pending request.
        assert!(sem.apply(&st, &AsyncLabel::barrier(M1)).is_ok());
    }

    #[test]
    fn retire_requires_drained_line() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        let err = sem
            .apply_silent(&st, &AsyncSilentStep::Retire { by: M0, loc: x(1) })
            .unwrap_err();
        assert!(matches!(err, StepError::Blocked { .. }));
        // Not listed among enabled steps either.
        assert!(sem
            .silent_steps(&st)
            .iter()
            .all(|s| !matches!(s, AsyncSilentStep::Retire { .. })));
    }

    #[test]
    fn retire_without_pending_request_is_blocked() {
        let sem = sem2();
        let st = sem.initial_state();
        let err = sem
            .apply_silent(&st, &AsyncSilentStep::Retire { by: M0, loc: x(1) })
            .unwrap_err();
        assert!(matches!(err, StepError::Blocked { .. }));
    }

    #[test]
    fn crash_discards_the_crashed_machines_buffer() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        let st = sem.apply(&st, &Label::crash(M0).into()).unwrap();
        assert!(st.pending_of(M0).is_empty());
        // The barrier now succeeds vacuously — and proves nothing, because
        // the request died with the machine.
        assert!(sem.apply(&st, &AsyncLabel::barrier(M0)).is_ok());
    }

    #[test]
    fn crash_of_other_machine_keeps_buffer() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        let st = sem.apply(&st, &Label::crash(M1).into()).unwrap();
        assert!(st.is_pending(M0, x(1)));
    }

    #[test]
    fn batching_persists_all_lines_before_barrier() {
        let sem = sem2();
        let y = Loc::new(M1, 1);
        let mut st = sem.initial_state();
        for (loc, v) in [(x(1), 1), (y, 2)] {
            st = sem
                .apply(&st, &Label::lstore(M0, loc, Val(v)).into())
                .unwrap();
            st = sem.apply(&st, &AsyncLabel::aflush(M0, loc)).unwrap();
        }
        let st = drain(&sem, st);
        let st = sem.apply(&st, &AsyncLabel::barrier(M0)).unwrap();
        assert_eq!(st.memory(x(1)), Val(1));
        assert_eq!(st.memory(y), Val(2));
    }

    #[test]
    fn later_store_value_is_what_persists() {
        // AFlush(x) then another LStore(x): the retirement persists the
        // *latest* drained value, as a real write-back would.
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        let st = sem
            .apply(&st, &Label::lstore(M0, x(1), Val(2)).into())
            .unwrap();
        let st = drain(&sem, st);
        let st = sem.apply(&st, &AsyncLabel::barrier(M0)).unwrap();
        assert_eq!(st.memory(x(1)), Val(2));
    }

    #[test]
    fn unknown_machine_and_location_rejected() {
        let sem = sem2();
        let st = sem.initial_state();
        assert!(matches!(
            sem.apply(&st, &AsyncLabel::aflush(MachineId(9), x(1))),
            Err(StepError::UnknownMachine { .. })
        ));
        assert!(matches!(
            sem.apply(&st, &AsyncLabel::aflush(M0, Loc::new(MachineId(9), 0))),
            Err(StepError::UnknownLocation { .. })
        ));
        assert!(matches!(
            sem.apply(&st, &AsyncLabel::barrier(MachineId(9))),
            Err(StepError::UnknownMachine { .. })
        ));
    }

    #[test]
    fn base_labels_behave_as_in_base_semantics() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::mstore(M0, x(1), Val(7)).into())
            .unwrap();
        assert_eq!(st.memory(x(1)), Val(7));
        assert!(st.base().no_cache_holds(x(1)));
        assert!(st.all_buffers_empty());
    }

    #[test]
    fn variant_carries_through() {
        let sem =
            AsyncSemantics::with_variant(SystemConfig::symmetric_nvm(2, 1), ModelVariant::Psn);
        assert_eq!(sem.base().variant(), ModelVariant::Psn);
        let st = sem.initial_state();
        let st = sem
            .apply(&st, &Label::lstore(M1, x(0), Val(1)).into())
            .unwrap();
        let st = sem.apply(&st, &Label::crash(M0).into()).unwrap();
        // PSN: m1's copy of m0's line is poisoned away.
        assert_eq!(st.base().cache(M1, x(0)), None);
    }

    #[test]
    fn display_includes_buffers() {
        let sem = sem2();
        let st = sem.initial_state();
        let st = sem.apply(&st, &AsyncLabel::aflush(M0, x(1))).unwrap();
        let s = st.to_string();
        assert!(s.contains("P_m0"), "{s}");
        assert!(s.contains("x[m1:a0]"), "{s}");
    }

    #[test]
    fn silent_step_display() {
        let step = AsyncSilentStep::Retire { by: M0, loc: x(1) };
        assert_eq!(step.to_string(), "τ[retire m0 x[m1:a0]]");
    }

    #[test]
    fn states_are_ord_and_hashable() {
        use std::collections::BTreeSet;
        let sem = sem2();
        let a = sem.initial_state();
        let b = sem.apply(&a, &AsyncLabel::aflush(M0, x(1))).unwrap();
        let mut set = BTreeSet::new();
        set.insert(a.clone());
        set.insert(b);
        set.insert(a);
        assert_eq!(set.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    //! Properties of the extension: the base cache invariant survives
    //! every extended step, buffers only hold valid locations, and a
    //! retire step is enabled whenever its line has drained.

    use proptest::prelude::*;

    use super::*;
    use crate::label::StoreKind;

    fn arb_label(machines: usize, locs_per: u32) -> impl Strategy<Value = AsyncLabel> {
        let m = 0..machines;
        let owner = 0..machines;
        let a = 0..locs_per;
        let v = 0..3u64;
        (m, owner, a, v, 0..10u8).prop_map(|(m, owner, a, v, which)| {
            let by = MachineId(m);
            let loc = Loc::new(MachineId(owner), a);
            match which {
                0 => Label::lstore(by, loc, Val(v)).into(),
                1 => Label::rstore(by, loc, Val(v)).into(),
                2 => Label::mstore(by, loc, Val(v)).into(),
                3 => Label::load(by, loc, Val(v)).into(),
                4 => Label::lflush(by, loc).into(),
                5 => Label::rflush(by, loc).into(),
                6 => Label::crash(by).into(),
                7 => Label::rmw(StoreKind::Local, by, loc, Val(v), Val(v + 1)).into(),
                8 => AsyncLabel::aflush(by, loc),
                _ => AsyncLabel::barrier(by),
            }
        })
    }

    proptest! {
        #[test]
        fn invariants_preserved_under_random_async_sequences(
            labels in proptest::collection::vec(arb_label(3, 2), 0..40),
            taus in proptest::collection::vec(0usize..4, 0..40),
        ) {
            let cfg = SystemConfig::new(vec![
                crate::config::MachineConfig::non_volatile(2),
                crate::config::MachineConfig::volatile(2),
                crate::config::MachineConfig::compute_only(),
            ]);
            let sem = AsyncSemantics::new(cfg.clone());
            let mut st = sem.initial_state();
            let mut tau_iter = taus.into_iter().cycle();
            for label in labels {
                if label.loc().is_some_and(|l| !cfg.contains_loc(l)) {
                    continue;
                }
                // Fix up observation labels so the step is enabled.
                let fixed = match label {
                    AsyncLabel::Base(Label::Load { by, loc, .. }) => {
                        Label::load(by, loc, sem.load_value(&st, loc)).into()
                    }
                    AsyncLabel::Base(Label::Rmw { kind, by, loc, new, .. }) => {
                        Label::rmw(kind, by, loc, sem.load_value(&st, loc), new).into()
                    }
                    other => other,
                };
                if let Ok(next) = sem.apply(&st, &fixed) {
                    st = next;
                }
                st.base().check_invariant().unwrap();
                // Buffers only hold valid locations.
                for m in cfg.machines() {
                    for &loc in st.pending_of(m) {
                        prop_assert!(cfg.contains_loc(loc));
                    }
                }
                // Interleave a random enabled silent step.
                let steps = sem.silent_steps(&st);
                if !steps.is_empty() {
                    let k = tau_iter.next().unwrap_or(0) % steps.len();
                    st = sem.apply_silent(&st, &steps[k]).unwrap();
                    st.base().check_invariant().unwrap();
                }
            }
        }

        #[test]
        fn retire_enabled_iff_pending_and_drained(
            labels in proptest::collection::vec(arb_label(2, 2), 0..25),
        ) {
            let cfg = SystemConfig::symmetric_nvm(2, 2);
            let sem = AsyncSemantics::new(cfg.clone());
            let mut st = sem.initial_state();
            for label in labels {
                let fixed = match label {
                    AsyncLabel::Base(Label::Load { by, loc, .. }) => {
                        Label::load(by, loc, sem.load_value(&st, loc)).into()
                    }
                    AsyncLabel::Base(Label::Rmw { kind, by, loc, new, .. }) => {
                        Label::rmw(kind, by, loc, sem.load_value(&st, loc), new).into()
                    }
                    other => other,
                };
                if let Ok(next) = sem.apply(&st, &fixed) {
                    st = next;
                }
                let enabled: std::collections::BTreeSet<_> = sem
                    .silent_steps(&st)
                    .into_iter()
                    .filter(|s| matches!(s, AsyncSilentStep::Retire { .. }))
                    .collect();
                for m in cfg.machines() {
                    for &loc in st.pending_of(m) {
                        let step = AsyncSilentStep::Retire { by: m, loc };
                        let should = st.base().no_cache_holds(loc);
                        prop_assert_eq!(enabled.contains(&step), should);
                        prop_assert_eq!(sem.apply_silent(&st, &step).is_ok(), should);
                    }
                }
            }
        }
    }
}
