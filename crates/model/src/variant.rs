//! The three model variants of §3.3 and §3.5: base `CXL0`, `CXL0_PSN`
//! (crash with cache-line poisoning), and `CXL0_LWB` (remote loads with
//! implicit write-back).

use std::fmt;

/// Which CXL0 model variant governs the semantics.
///
/// Every trace allowed by [`ModelVariant::Psn`] or [`ModelVariant::Lwb`] is
/// also allowed by [`ModelVariant::Base`]; the two variants themselves are
/// incomparable (§3.5, tests 10–12). The `cxl0-explore` crate's refinement
/// checker verifies these claims mechanically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelVariant {
    /// The base model of Figure 2.
    #[default]
    Base,
    /// *Crash with cache line poisoning*: when machine `i` crashes, every
    /// cache entry for a location owned by `i` is additionally invalidated
    /// in **all** caches (CXL Isolation / MemData-NXM poison responses,
    /// §9.9, §12.3 of the CXL spec).
    Psn,
    /// *Remote loads with implicit write-back*: `LOAD-from-C` only serves
    /// hits in the issuer's **own** cache; any other load must wait until
    /// the value has drained to the owner's memory (so every remote load
    /// observes a persistent value).
    Lwb,
}

impl ModelVariant {
    /// All variants, base first.
    pub const ALL: [ModelVariant; 3] = [ModelVariant::Base, ModelVariant::Psn, ModelVariant::Lwb];
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelVariant::Base => write!(f, "CXL0"),
            ModelVariant::Psn => write!(f, "CXL0_PSN"),
            ModelVariant::Lwb => write!(f, "CXL0_LWB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_base() {
        assert_eq!(ModelVariant::default(), ModelVariant::Base);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelVariant::Base.to_string(), "CXL0");
        assert_eq!(ModelVariant::Psn.to_string(), "CXL0_PSN");
        assert_eq!(ModelVariant::Lwb.to_string(), "CXL0_LWB");
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(ModelVariant::ALL.len(), 3);
    }
}
