//! System model variations of §4: which CXL0 primitives each machine may
//! issue under the current and near-future CXL deployment configurations.
//!
//! The paper's roadmap (Fig. 4) names four configurations; each restricts
//! the general CXL0 semantics to the primitives the CXL specification
//! actually provides in that setting:
//!
//! | Configuration | Restrictions |
//! |---|---|
//! | Host–device pair | host: no `RStore`, no `LFlush`, no remote RMWs; device: no `LFlush`, no remote RMWs |
//! | Partitioned pool | no `RStore`, no `LOAD-from-C`, no `Propagate-C-C`, no remote RMWs; `LFlush ≡ RFlush` |
//! | Shared pool (non-coherent) | only `MStore`, `LOAD-from-M`, `M-RMW` |
//! | Shared pool (coherent) | no `RStore`, no `LOAD-from-C`, no `LFlush`, no `Propagate-C-C`, no remote RMWs |
//!
//! "Remote RMWs" are `R-RMW` and `M-RMW`.

use std::fmt;

use crate::ids::MachineId;
use crate::label::Primitive;

/// Per-machine primitive capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capabilities {
    /// May issue `Load` (served from cache or memory as the rules allow).
    pub load: bool,
    /// May issue `LStore`.
    pub lstore: bool,
    /// May issue `RStore`.
    pub rstore: bool,
    /// May issue `MStore`.
    pub mstore: bool,
    /// May issue `LFlush`.
    pub lflush: bool,
    /// May issue `RFlush`.
    pub rflush: bool,
    /// May issue `GPF`.
    pub gpf: bool,
    /// May issue `L-RMW`.
    pub l_rmw: bool,
    /// May issue `R-RMW`.
    pub r_rmw: bool,
    /// May issue `M-RMW`.
    pub m_rmw: bool,
}

impl Capabilities {
    /// Everything allowed (the unrestricted CXL0 model).
    pub const fn full() -> Self {
        Capabilities {
            load: true,
            lstore: true,
            rstore: true,
            mstore: true,
            lflush: true,
            rflush: true,
            gpf: true,
            l_rmw: true,
            r_rmw: true,
            m_rmw: true,
        }
    }

    /// Whether `p` is granted.
    pub fn allows(&self, p: Primitive) -> bool {
        match p {
            Primitive::Load => self.load,
            Primitive::LStore => self.lstore,
            Primitive::RStore => self.rstore,
            Primitive::MStore => self.mstore,
            Primitive::LFlush => self.lflush,
            Primitive::RFlush => self.rflush,
            Primitive::Gpf => self.gpf,
            Primitive::LRmw => self.l_rmw,
            Primitive::RRmw => self.r_rmw,
            Primitive::MRmw => self.m_rmw,
            Primitive::Crash => true, // crashes are environment events
        }
    }

    /// The granted subset of [`Primitive::ISSUED`].
    pub fn granted(&self) -> Vec<Primitive> {
        Primitive::ISSUED
            .iter()
            .copied()
            .filter(|&p| self.allows(p))
            .collect()
    }
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities::full()
    }
}

/// A topology: a named set of per-machine capabilities plus fabric-level
/// switches (whether `Propagate-C-C` exists at all).
///
/// # Examples
///
/// ```
/// use cxl0_model::{Topology, MachineId, Primitive};
///
/// let t = Topology::host_device_pair();
/// let host = MachineId(0);
/// let device = MachineId(1);
/// assert!(!t.allows(host, Primitive::RStore));   // host cannot RStore
/// assert!(t.allows(device, Primitive::RStore));  // device can
/// assert!(!t.allows(device, Primitive::LFlush)); // nobody can LFlush
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Topology {
    name: &'static str,
    per_machine: Vec<Capabilities>,
    prop_cc: bool,
}

impl Topology {
    /// An unrestricted topology over `n` machines (the full CXL0 model,
    /// corresponding to the paper's "future configurations").
    pub fn unrestricted(n: usize) -> Self {
        Topology {
            name: "unrestricted",
            per_machine: vec![Capabilities::full(); n],
            prop_cc: true,
        }
    }

    /// §4 *Host–device pair* (Fig. 4a): machine 0 is the host, machine 1
    /// the Type-2 device. The host can issue everything but `RStore`,
    /// `LFlush` and remote RMWs; the device everything but `LFlush` and
    /// remote RMWs.
    pub fn host_device_pair() -> Self {
        let host = Capabilities {
            rstore: false,
            lflush: false,
            r_rmw: false,
            m_rmw: false,
            ..Capabilities::full()
        };
        let device = Capabilities {
            lflush: false,
            r_rmw: false,
            m_rmw: false,
            ..Capabilities::full()
        };
        Topology {
            name: "host-device-pair",
            per_machine: vec![host, device],
            prop_cc: true,
        }
    }

    /// §4 *Partitioned disaggregated memory pool* (Fig. 4b, disjoint
    /// partitions): `n` hosts, each paired with its own pool partition.
    /// Excludes `RStore`, cache-to-cache interaction and remote RMWs;
    /// `LFlush` and `RFlush` are semantically equivalent here (both are
    /// granted; the equivalence is a theorem, checkable with the explorer).
    pub fn partitioned_pool(n: usize) -> Self {
        let caps = Capabilities {
            rstore: false,
            r_rmw: false,
            m_rmw: false,
            ..Capabilities::full()
        };
        Topology {
            name: "partitioned-pool",
            per_machine: vec![caps; n],
            prop_cc: false,
        }
    }

    /// §4 *Shared disaggregated memory pool*, fully cache-coherent version:
    /// interactions with remote caches are unavailable, so `RStore`,
    /// `LFlush` on remote lines, `Propagate-C-C` and remote RMWs are
    /// excluded.
    pub fn shared_pool_coherent(n: usize) -> Self {
        let caps = Capabilities {
            rstore: false,
            lflush: false,
            r_rmw: false,
            m_rmw: false,
            ..Capabilities::full()
        };
        Topology {
            name: "shared-pool-coherent",
            per_machine: vec![caps; n],
            prop_cc: false,
        }
    }

    /// §4 *Shared disaggregated memory pool*, realistic non-coherent
    /// version: caches must be bypassed entirely, so only `MStore`,
    /// memory-served `Load`, and `M-RMW` are usable.
    pub fn shared_pool_noncoherent(n: usize) -> Self {
        let caps = Capabilities {
            lstore: false,
            rstore: false,
            lflush: false,
            rflush: false,
            gpf: false,
            l_rmw: false,
            r_rmw: false,
            ..Capabilities {
                load: true,
                mstore: true,
                m_rmw: true,
                ..Capabilities::full()
            }
        };
        Topology {
            name: "shared-pool-noncoherent",
            per_machine: vec![caps; n],
            prop_cc: false,
        }
    }

    /// A custom topology.
    pub fn custom(name: &'static str, per_machine: Vec<Capabilities>, prop_cc: bool) -> Self {
        Topology {
            name,
            per_machine,
            prop_cc,
        }
    }

    /// The topology's name (used in error messages and reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of machines this topology describes.
    pub fn num_machines(&self) -> usize {
        self.per_machine.len()
    }

    /// Whether machine `m` may issue primitive `p`.
    pub fn allows(&self, m: MachineId, p: Primitive) -> bool {
        self.per_machine.get(m.index()).is_some_and(|c| c.allows(p))
    }

    /// Whether the fabric performs `Propagate-C-C` steps at all.
    pub fn allows_prop_cc(&self) -> bool {
        self.prop_cc
    }

    /// The capability set of machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn capabilities(&self, m: MachineId) -> &Capabilities {
        &self.per_machine[m.index()]
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "topology {} ({} machines):",
            self.name,
            self.num_machines()
        )?;
        for (i, c) in self.per_machine.iter().enumerate() {
            let granted: Vec<String> = c.granted().iter().map(|p| p.to_string()).collect();
            writeln!(f, "  m{i}: {}", granted.join(", "))?;
        }
        write!(
            f,
            "  Propagate-C-C: {}",
            if self.prop_cc { "enabled" } else { "disabled" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: MachineId = MachineId(0);
    const DEV: MachineId = MachineId(1);

    #[test]
    fn full_capabilities_allow_everything() {
        let c = Capabilities::full();
        for p in Primitive::ISSUED {
            assert!(c.allows(p), "{p} should be allowed");
        }
        assert_eq!(c.granted().len(), 10);
    }

    #[test]
    fn host_device_pair_matches_section_4() {
        let t = Topology::host_device_pair();
        // Host: everything but RStore, LFlush, R-RMW, M-RMW.
        assert!(t.allows(HOST, Primitive::Load));
        assert!(t.allows(HOST, Primitive::LStore));
        assert!(t.allows(HOST, Primitive::MStore));
        assert!(t.allows(HOST, Primitive::RFlush));
        assert!(t.allows(HOST, Primitive::Gpf));
        assert!(t.allows(HOST, Primitive::LRmw));
        assert!(!t.allows(HOST, Primitive::RStore));
        assert!(!t.allows(HOST, Primitive::LFlush));
        assert!(!t.allows(HOST, Primitive::RRmw));
        assert!(!t.allows(HOST, Primitive::MRmw));
        // Device: all stores including RStore, but no LFlush / remote RMWs.
        assert!(t.allows(DEV, Primitive::RStore));
        assert!(t.allows(DEV, Primitive::LStore));
        assert!(t.allows(DEV, Primitive::MStore));
        assert!(!t.allows(DEV, Primitive::LFlush));
        assert!(!t.allows(DEV, Primitive::RRmw));
        assert!(!t.allows(DEV, Primitive::MRmw));
        assert!(t.allows_prop_cc());
    }

    #[test]
    fn partitioned_pool_excludes_cross_host_interaction() {
        let t = Topology::partitioned_pool(3);
        assert_eq!(t.num_machines(), 3);
        for i in 0..3 {
            let m = MachineId(i);
            assert!(!t.allows(m, Primitive::RStore));
            assert!(!t.allows(m, Primitive::RRmw));
            assert!(!t.allows(m, Primitive::MRmw));
            assert!(t.allows(m, Primitive::LFlush));
            assert!(t.allows(m, Primitive::RFlush));
            assert!(t.allows(m, Primitive::LRmw));
        }
        assert!(!t.allows_prop_cc());
    }

    #[test]
    fn noncoherent_pool_only_memory_primitives() {
        let t = Topology::shared_pool_noncoherent(2);
        for i in 0..2 {
            let m = MachineId(i);
            assert_eq!(
                t.capabilities(m).granted(),
                vec![Primitive::Load, Primitive::MStore, Primitive::MRmw]
            );
        }
    }

    #[test]
    fn coherent_pool_excludes_remote_cache_interaction() {
        let t = Topology::shared_pool_coherent(2);
        let m = MachineId(0);
        assert!(!t.allows(m, Primitive::RStore));
        assert!(!t.allows(m, Primitive::LFlush));
        assert!(t.allows(m, Primitive::LStore));
        assert!(t.allows(m, Primitive::RFlush));
        assert!(!t.allows_prop_cc());
    }

    #[test]
    fn crash_is_always_allowed() {
        let t = Topology::shared_pool_noncoherent(2);
        assert!(t.allows(MachineId(0), Primitive::Crash));
    }

    #[test]
    fn out_of_range_machine_allows_nothing() {
        let t = Topology::host_device_pair();
        assert!(!t.allows(MachineId(9), Primitive::Load));
    }

    #[test]
    fn display_lists_capabilities() {
        let t = Topology::host_device_pair();
        let s = t.to_string();
        assert!(s.contains("host-device-pair"));
        assert!(s.contains("m0:"));
        assert!(s.contains("Propagate-C-C: enabled"));
    }
}
