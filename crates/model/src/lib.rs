//! # `cxl0-model` — the CXL0 programming model as an executable semantics
//!
//! This crate implements the formal core of *"A Programming Model for
//! Disaggregated Memory over CXL"* (ASPLOS 2026): the **CXL0** labeled
//! transition system of §3, including
//!
//! * system states `γ = (C, M)` — per-machine abstract caches and memories
//!   ([`State`]),
//! * the visible transition labels — `Load`, `LStore`/`RStore`/`MStore`,
//!   `LFlush`/`RFlush`, `GPF`, six RMW flavours, and per-machine crashes
//!   ([`Label`]),
//! * the silent propagation steps `Propagate-C-C` / `Propagate-C-M`
//!   ([`SilentStep`]),
//! * the transition rules of Figure 2 ([`Semantics`]),
//! * the model variants `CXL0_PSN` and `CXL0_LWB` of §3.5
//!   ([`ModelVariant`]), and
//! * the system-model topologies of §4 with their primitive restrictions
//!   ([`Topology`]).
//!
//! The semantics is deliberately *small-step and deterministic per label*:
//! all nondeterminism lives in the choice of silent steps and crash points,
//! which is what the companion crate `cxl0-explore` enumerates.
//!
//! ## Quick example
//!
//! Litmus test 1 of the paper — an `RStore` may be lost on crash:
//!
//! ```
//! use cxl0_model::{Semantics, SystemConfig, Label, Loc, MachineId, Val};
//!
//! let cfg = SystemConfig::symmetric_nvm(1, 1);
//! let sem = Semantics::new(cfg);
//! let x = Loc::new(MachineId(0), 0);
//!
//! let st = sem.initial_state();
//! let st = sem.apply(&st, &Label::rstore(MachineId(0), x, Val(1)))?;
//! let st = sem.apply(&st, &Label::crash(MachineId(0)))?;
//! // The store never reached persistent memory, so 0 is observable:
//! let st = sem.apply(&st, &Label::load(MachineId(0), x, Val(0)))?;
//! assert_eq!(st.memory(x), Val::ZERO);
//! # Ok::<(), cxl0_model::StepError>(())
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`ids`] | §3.1 | `MachineId`, `Addr`, `Loc`, `Val` |
//! | [`config`] | §3.1 | machines, memory kinds, failure domains |
//! | [`label`] | §3.3 | visible labels, primitives, silent steps |
//! | [`state`] | §3.3 | `γ = (C, M)`, global cache invariant |
//! | [`semantics`] | Fig. 2, §3.3 | the transition rules |
//! | [`variant`] | §3.5 | `CXL0`, `CXL0_PSN`, `CXL0_LWB` |
//! | [`asyncflush`] | §3.2 (extension) | `CXL0_AF`: persistency buffers, `AFlush`, `Barrier` |
//! | [`topology`] | §4 | primitive availability per configuration |
//! | [`trace`] | §3.4 | label sequences & litmus notation |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod asyncflush;
pub mod config;
pub mod ids;
pub mod label;
pub mod semantics;
pub mod state;
pub mod topology;
pub mod trace;
pub mod variant;

pub use asyncflush::{AsyncLabel, AsyncSemantics, AsyncSilentStep, AsyncState};
pub use config::{MachineConfig, MemoryKind, SystemConfig};
pub use ids::{Addr, Loc, MachineId, Val};
pub use label::{FlushKind, Label, Primitive, SilentStep, StoreKind};
pub use semantics::{Semantics, StepError, StepResult};
pub use state::{Cache, InvariantViolation, State};
pub use topology::{Capabilities, Topology};
pub use trace::Trace;
pub use variant::ModelVariant;

#[cfg(test)]
mod invariant_proptests {
    //! Property: the global cache invariant of §3.3 is preserved by every
    //! applicable step (visible or silent), from any reachable state.

    use proptest::prelude::*;

    use crate::*;

    const VALS: [u64; 3] = [0, 1, 2];

    fn arb_label(machines: usize, locs_per: u32) -> impl Strategy<Value = Label> {
        let m = 0..machines;
        let owner = 0..machines;
        let a = 0..locs_per;
        let v = proptest::sample::select(VALS.to_vec());
        let v2 = proptest::sample::select(VALS.to_vec());
        (m, owner, a, v, v2, 0..8u8).prop_map(|(m, owner, a, v, v2, which)| {
            let by = MachineId(m);
            let loc = Loc::new(MachineId(owner), a);
            match which {
                0 => Label::lstore(by, loc, Val(v)),
                1 => Label::rstore(by, loc, Val(v)),
                2 => Label::mstore(by, loc, Val(v)),
                3 => Label::load(by, loc, Val(v)),
                4 => Label::lflush(by, loc),
                5 => Label::rflush(by, loc),
                6 => Label::crash(by),
                _ => Label::rmw(StoreKind::Local, by, loc, Val(v), Val(v2)),
            }
        })
    }

    proptest! {
        #[test]
        fn invariant_preserved_under_random_sequences(
            labels in proptest::collection::vec(arb_label(3, 2), 0..40),
            taus in proptest::collection::vec(0usize..4, 0..40),
            variant in proptest::sample::select(ModelVariant::ALL.to_vec()),
        ) {
            let cfg = SystemConfig::new(vec![
                MachineConfig::non_volatile(2),
                MachineConfig::volatile(2),
                MachineConfig::compute_only(),
            ]);
            let sem = Semantics::with_variant(cfg, variant);
            let mut st = sem.initial_state();
            let mut tau_iter = taus.into_iter().cycle();
            for label in labels {
                if label.loc().is_some_and(|l| !sem.config().contains_loc(l)) {
                    continue;
                }
                // Fix up load/rmw observed values so the step is enabled.
                let fixed = match label {
                    Label::Load { by, loc, .. } =>
                        Label::load(by, loc, sem.load_value(&st, loc)),
                    Label::Rmw { kind, by, loc, new, .. } =>
                        Label::rmw(kind, by, loc, sem.load_value(&st, loc), new),
                    other => other,
                };
                if let Ok(next) = sem.apply(&st, &fixed) {
                    next.check_invariant().unwrap();
                    st = next;
                }
                // Interleave a random enabled silent step.
                let steps = sem.silent_steps(&st);
                if !steps.is_empty() {
                    let k = tau_iter.next().unwrap_or(0) % steps.len();
                    let next = sem.apply_silent(&st, &steps[k]).unwrap();
                    next.check_invariant().unwrap();
                    st = next;
                }
            }
        }

        #[test]
        fn visible_value_is_unique_per_state(
            labels in proptest::collection::vec(arb_label(2, 1), 0..25),
        ) {
            let cfg = SystemConfig::symmetric_nvm(2, 1);
            let sem = Semantics::new(cfg.clone());
            let mut st = sem.initial_state();
            for label in labels {
                let fixed = match label {
                    Label::Load { by, loc, .. } =>
                        Label::load(by, loc, sem.load_value(&st, loc)),
                    Label::Rmw { kind, by, loc, new, .. } =>
                        Label::rmw(kind, by, loc, sem.load_value(&st, loc), new),
                    other => other,
                };
                if let Ok(next) = sem.apply(&st, &fixed) {
                    st = next;
                }
                for loc in cfg.all_locations() {
                    // All caches that hold the location agree with visible_value.
                    for m in st.holders(loc) {
                        prop_assert_eq!(st.cache(m, loc).unwrap(), st.visible_value(loc));
                    }
                }
            }
        }
    }
}
