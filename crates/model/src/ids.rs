//! Identifier newtypes used throughout the model: machines, addresses,
//! locations and values.
//!
//! The paper assumes `N` machines whose location sets `Loc_1 .. Loc_N` are
//! pairwise disjoint. We encode a location as an *(owner, address)* pair,
//! which makes disjointness structural: two locations with different owners
//! can never alias.

use std::fmt;

/// Identifier of a machine (a CXL Type-2 node: host, device, or memory node).
///
/// Machines are numbered densely from `0` to `N-1` within a
/// [`SystemConfig`](crate::config::SystemConfig).
///
/// # Examples
///
/// ```
/// use cxl0_model::MachineId;
/// let host = MachineId(0);
/// let device = MachineId(1);
/// assert_ne!(host, device);
/// assert_eq!(host.to_string(), "m0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub usize);

impl MachineId {
    /// The raw index of this machine.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<usize> for MachineId {
    fn from(i: usize) -> Self {
        MachineId(i)
    }
}

/// Address of a shared memory location *within* its owning machine.
///
/// Addresses are cache-line-granular indices into the owner's shared
/// segment, `0 .. MachineConfig::locations`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u32);

impl Addr {
    /// The raw index of this address.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u32> for Addr {
    fn from(a: u32) -> Self {
        Addr(a)
    }
}

/// A shared memory location `x ∈ Loc_k`: an address owned by machine `k`.
///
/// The paper's disjointness assumption (`Loc_i ∩ Loc_j = ∅` for `i ≠ j`)
/// holds by construction because the owner is part of the identity.
///
/// # Examples
///
/// ```
/// use cxl0_model::{Loc, MachineId};
/// let x = Loc::new(MachineId(1), 0); // "x₁" in the paper's notation
/// assert_eq!(x.owner, MachineId(1));
/// assert_eq!(x.to_string(), "x[m1:a0]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// The machine whose physical memory backs this location.
    pub owner: MachineId,
    /// The cache-line index within the owner's shared segment.
    pub addr: Addr,
}

impl Loc {
    /// Creates the location with the given owner and address index.
    pub fn new(owner: MachineId, addr: u32) -> Self {
        Loc {
            owner,
            addr: Addr(addr),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x[{}:{}]", self.owner, self.addr)
    }
}

/// A value stored in memory. The distinguished initial value is [`Val::ZERO`].
///
/// # Examples
///
/// ```
/// use cxl0_model::Val;
/// assert_eq!(Val::default(), Val::ZERO);
/// assert_eq!(Val(7).to_string(), "7");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Val(pub u64);

impl Val {
    /// The initial value of every location (the paper's distinguished `0`).
    pub const ZERO: Val = Val(0);

    /// The raw integer payload.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Val {
    fn from(v: u64) -> Self {
        Val(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_id_display_and_order() {
        assert_eq!(MachineId(3).to_string(), "m3");
        assert!(MachineId(0) < MachineId(1));
        assert_eq!(MachineId::from(2).index(), 2);
    }

    #[test]
    fn addr_display_and_index() {
        assert_eq!(Addr(7).to_string(), "a7");
        assert_eq!(Addr::from(7u32).index(), 7);
    }

    #[test]
    fn locations_with_different_owners_are_distinct() {
        let a = Loc::new(MachineId(0), 0);
        let b = Loc::new(MachineId(1), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn loc_display() {
        assert_eq!(Loc::new(MachineId(2), 5).to_string(), "x[m2:a5]");
    }

    #[test]
    fn val_zero_is_default() {
        assert_eq!(Val::default(), Val::ZERO);
        assert_eq!(Val::ZERO.raw(), 0);
        assert_eq!(Val::from(9u64), Val(9));
    }
}
