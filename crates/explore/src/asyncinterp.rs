//! Nondeterministic interpretation of the `CXL0_AF` asynchronous-flush
//! extension (`cxl0_model::asyncflush`).
//!
//! This mirrors [`crate::interp::Explorer`] for the extended system: the
//! silent-step alphabet additionally contains *retirement* steps that
//! discharge pending persistency-buffer entries, so the τ-closure here
//! saturates under propagation **and** retirement. On top of the `⟹`
//! relation we provide the same trace-executability and outcome-comparison
//! queries, which the `paper_async` litmus suite and the
//! `AFlush;Barrier ≡ RFlush` equivalence checks are built on.

use std::collections::BTreeSet;

use cxl0_model::asyncflush::{AsyncLabel, AsyncSemantics, AsyncState};

/// A canonical set of extended states.
pub type AsyncStateSet = BTreeSet<AsyncState>;

/// Interprets `CXL0_AF` traces under a fixed [`AsyncSemantics`].
///
/// # Examples
///
/// ```
/// use cxl0_explore::AsyncExplorer;
/// use cxl0_model::asyncflush::{AsyncLabel, AsyncSemantics};
/// use cxl0_model::{Label, Loc, MachineId, SystemConfig, Val};
///
/// let sem = AsyncSemantics::new(SystemConfig::symmetric_nvm(2, 1));
/// let exp = AsyncExplorer::new(&sem);
/// let (m1, m2) = (MachineId(0), MachineId(1));
/// let x = Loc::new(m2, 0);
///
/// // An un-barriered AFlush guarantees nothing: the stored value may be
/// // lost with the owner's crash (litmus A4).
/// let lossy = [
///     Label::lstore(m1, x, Val(1)).into(),
///     AsyncLabel::aflush(m1, x),
///     Label::crash(m2).into(),
///     Label::load(m1, x, Val(0)).into(),
/// ];
/// assert!(exp.is_allowed(&lossy));
///
/// // With a barrier the behavior is forbidden, exactly like RFlush
/// // (litmus A3 vs. paper test 5).
/// let safe = [
///     Label::lstore(m1, x, Val(1)).into(),
///     AsyncLabel::aflush(m1, x),
///     AsyncLabel::barrier(m1),
///     Label::crash(m2).into(),
///     Label::load(m1, x, Val(0)).into(),
/// ];
/// assert!(!exp.is_allowed(&safe));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AsyncExplorer<'a> {
    sem: &'a AsyncSemantics,
}

impl<'a> AsyncExplorer<'a> {
    /// Creates an explorer over the given extended semantics.
    pub fn new(sem: &'a AsyncSemantics) -> Self {
        AsyncExplorer { sem }
    }

    /// The underlying semantics.
    pub fn semantics(&self) -> &'a AsyncSemantics {
        self.sem
    }

    /// The τ-closed singleton of the initial state.
    pub fn initial_set(&self) -> AsyncStateSet {
        let mut s = AsyncStateSet::new();
        s.insert(self.sem.initial_state());
        self.tau_closure(&s)
    }

    /// All states reachable from `set` by zero or more silent steps
    /// (propagation *and* retirement). Terminates: propagation moves values
    /// monotonically toward memory and retirement strictly shrinks buffers.
    pub fn tau_closure(&self, set: &AsyncStateSet) -> AsyncStateSet {
        let mut closed: AsyncStateSet = set.clone();
        let mut frontier: Vec<AsyncState> = set.iter().cloned().collect();
        while let Some(st) = frontier.pop() {
            for step in self.sem.silent_steps(&st) {
                let next = self
                    .sem
                    .apply_silent(&st, &step)
                    .expect("enumerated silent step must be enabled");
                if closed.insert(next.clone()) {
                    frontier.push(next);
                }
            }
        }
        closed
    }

    /// Applies one visible label to every state in `set` (blocked or
    /// mismatching states drop out), without silent steps.
    pub fn apply_label(&self, set: &AsyncStateSet, label: &AsyncLabel) -> AsyncStateSet {
        set.iter()
            .filter_map(|st| self.sem.apply(st, label).ok())
            .collect()
    }

    /// The `⟹` step for one label: τ-closure, the label, τ-closure.
    pub fn after_label(&self, set: &AsyncStateSet, label: &AsyncLabel) -> AsyncStateSet {
        let closed = self.tau_closure(set);
        let stepped = self.apply_label(&closed, label);
        self.tau_closure(&stepped)
    }

    /// The `⟹` relation for a whole label sequence starting from `set`.
    pub fn after_trace(&self, set: &AsyncStateSet, trace: &[AsyncLabel]) -> AsyncStateSet {
        let mut cur = self.tau_closure(set);
        for label in trace {
            if cur.is_empty() {
                break;
            }
            cur = self.after_label(&cur, label);
        }
        cur
    }

    /// The states reachable from the initial state via `trace`.
    pub fn run_trace(&self, trace: &[AsyncLabel]) -> AsyncStateSet {
        self.after_trace(&self.initial_set(), trace)
    }

    /// Whether `trace` is executable from the initial state.
    pub fn is_allowed(&self, trace: &[AsyncLabel]) -> bool {
        !self.run_trace(trace).is_empty()
    }

    /// Whether two label sequences lead to the same τ-closed outcome sets
    /// from `set`.
    pub fn same_outcomes(&self, set: &AsyncStateSet, a: &[AsyncLabel], b: &[AsyncLabel]) -> bool {
        self.after_trace(set, a) == self.after_trace(set, b)
    }

    /// Whether every outcome of `a` is an outcome of `b` from `set`.
    pub fn simulates(&self, set: &AsyncStateSet, a: &[AsyncLabel], b: &[AsyncLabel]) -> bool {
        self.after_trace(set, a)
            .is_subset(&self.after_trace(set, b))
    }

    /// Enumerates every state reachable from the initial state using the
    /// given visible-label alphabet (with τ steps interleaved freely),
    /// up to `max_states` states. Used by the exhaustive
    /// `AFlush;Barrier ≡ RFlush` equivalence checks.
    pub fn reachable_states(&self, alphabet: &[AsyncLabel], max_states: usize) -> AsyncStateSet {
        let mut seen = self.initial_set();
        let mut frontier: Vec<AsyncState> = seen.iter().cloned().collect();
        'explore: while let Some(st) = frontier.pop() {
            let mut singleton = AsyncStateSet::new();
            singleton.insert(st);
            for label in alphabet {
                for next in self.after_label(&singleton, label) {
                    if seen.len() >= max_states {
                        break 'explore;
                    }
                    if seen.insert(next.clone()) {
                        frontier.push(next);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl0_model::{Label, Loc, MachineId, SystemConfig, Val};

    const M1: MachineId = MachineId(0);
    const M2: MachineId = MachineId(1);

    fn sem2() -> AsyncSemantics {
        AsyncSemantics::new(SystemConfig::symmetric_nvm(2, 1))
    }

    fn x(owner: usize) -> Loc {
        Loc::new(MachineId(owner), 0)
    }

    #[test]
    fn tau_closure_includes_retirement() {
        let sem = sem2();
        let exp = AsyncExplorer::new(&sem);
        let st = sem
            .apply(&sem.initial_state(), &AsyncLabel::aflush(M1, x(1)))
            .unwrap();
        let mut set = AsyncStateSet::new();
        set.insert(st);
        let closed = exp.tau_closure(&set);
        // Pending and retired variants of the same base state.
        assert_eq!(closed.len(), 2);
        assert!(closed.iter().any(AsyncState::all_buffers_empty));
    }

    #[test]
    fn barrier_filters_unretired_branches() {
        let sem = sem2();
        let exp = AsyncExplorer::new(&sem);
        let trace = [
            Label::lstore(M1, x(1), Val(1)).into(),
            AsyncLabel::aflush(M1, x(1)),
            AsyncLabel::barrier(M1),
        ];
        let set = exp.run_trace(&trace);
        assert!(!set.is_empty());
        for st in &set {
            // Every surviving branch has drained and persisted the store.
            assert!(st.all_buffers_empty());
            assert_eq!(st.memory(x(1)), Val(1));
        }
    }

    #[test]
    fn aflush_barrier_equals_rflush_from_reachable_states() {
        // The headline equivalence: from every reachable state with an
        // empty issuer buffer, AFlush;Barrier has exactly RFlush's
        // outcomes. (With a non-empty buffer it is strictly stronger —
        // covered by the inclusion check below.)
        let sem = sem2();
        let exp = AsyncExplorer::new(&sem);
        let alphabet: Vec<AsyncLabel> = vec![
            Label::lstore(M1, x(1), Val(1)).into(),
            Label::lstore(M2, x(1), Val(2)).into(),
            Label::crash(M2).into(),
            AsyncLabel::aflush(M1, x(0)),
        ];
        let reachable = exp.reachable_states(&alphabet, 500);
        assert!(reachable.len() > 3);
        let via_async = [AsyncLabel::aflush(M1, x(1)), AsyncLabel::barrier(M1)];
        let via_sync = [Label::rflush(M1, x(1)).into()];
        for st in &reachable {
            let mut set = AsyncStateSet::new();
            set.insert(st.clone());
            if st.pending_of(M1).is_empty() {
                assert!(
                    exp.same_outcomes(&set, &via_async, &via_sync),
                    "outcome mismatch from {st}"
                );
            } else {
                assert!(
                    exp.simulates(&set, &via_async, &via_sync),
                    "AFlush;Barrier must refine RFlush from {st}"
                );
            }
        }
    }

    #[test]
    fn empty_trace_allowed() {
        let sem = sem2();
        let exp = AsyncExplorer::new(&sem);
        assert!(exp.is_allowed(&[]));
    }

    #[test]
    fn reachable_states_respects_cap() {
        let sem = sem2();
        let exp = AsyncExplorer::new(&sem);
        let alphabet: Vec<AsyncLabel> = vec![
            Label::lstore(M1, x(1), Val(1)).into(),
            AsyncLabel::aflush(M1, x(1)),
        ];
        let capped = exp.reachable_states(&alphabet, 2);
        assert!(capped.len() <= 2, "cap exceeded: {}", capped.len());
    }
}
