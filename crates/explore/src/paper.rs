//! The paper's litmus tests, as executable [`Litmus`] values:
//!
//! * Figure 3, tests 1–9 — behaviors of the base model;
//! * §3.5, tests 10–12 — triples separating `CXL0` / `CXL0_LWB` /
//!   `CXL0_PSN`;
//! * §6's motivating example — test 13 (`assert(r1 == r2)` can fail when a
//!   *remote* machine crashes).
//!
//! Naming follows the paper: machine *1* is `MachineId(0)`, machine *2*
//! is `MachineId(1)`, and so on; `xᵢ` denotes the location owned by
//! machine *i*. Test 8's `RStore₂(y₁, x₂)` shorthand (read `x₂`, then
//! `RStore` the read value to `y₁`) is expanded into an explicit
//! `Load₂(x₂, v)` followed by `RStore₂(y₁, v)`.

use cxl0_model::{Label, Loc, MachineConfig, MachineId, ModelVariant, SystemConfig, Trace, Val};

use crate::litmus::{Litmus, Verdict};

const M1: MachineId = MachineId(0);
const M2: MachineId = MachineId(1);

/// `xᵢ`: the single location owned by the paper's machine `i` (1-based).
fn x(i: usize) -> Loc {
    Loc::new(MachineId(i - 1), 0)
}

fn base(v: Verdict) -> Vec<(ModelVariant, Verdict)> {
    vec![(ModelVariant::Base, v)]
}

/// Figure 3, tests 1–9 (all memory non-volatile).
pub fn figure3_tests() -> Vec<Litmus> {
    let one = SystemConfig::symmetric_nvm(1, 1);
    let two = SystemConfig::symmetric_nvm(2, 1);
    let three = SystemConfig::symmetric_nvm(3, 1);
    vec![
        Litmus {
            name: "test-01".into(),
            description: "RStore may be lost on crash (no persistence guarantee)".into(),
            config: one.clone(),
            trace: Trace::from_labels([
                Label::rstore(M1, x(1), Val(1)),
                Label::crash(M1),
                Label::load(M1, x(1), Val(0)),
            ]),
            expected: base(Verdict::Allowed),
        },
        Litmus {
            name: "test-02".into(),
            description: "MStore persists before returning".into(),
            config: one.clone(),
            trace: Trace::from_labels([
                Label::mstore(M1, x(1), Val(1)),
                Label::crash(M1),
                Label::load(M1, x(1), Val(0)),
            ]),
            expected: base(Verdict::Forbidden),
        },
        Litmus {
            name: "test-03".into(),
            description: "LStore + LFlush to local NVM persists".into(),
            config: one,
            trace: Trace::from_labels([
                Label::lstore(M1, x(1), Val(1)),
                Label::lflush(M1, x(1)),
                Label::crash(M1),
                Label::load(M1, x(1), Val(0)),
            ]),
            expected: base(Verdict::Forbidden),
        },
        Litmus {
            name: "test-04".into(),
            description: "LFlush to a remote line only reaches the owner's cache".into(),
            config: two.clone(),
            trace: Trace::from_labels([
                Label::lstore(M1, x(2), Val(1)),
                Label::lflush(M1, x(2)),
                Label::crash(M2),
                Label::load(M1, x(2), Val(0)),
            ]),
            expected: base(Verdict::Allowed),
        },
        Litmus {
            name: "test-05".into(),
            description: "RFlush forces propagation to remote persistent memory".into(),
            config: two.clone(),
            trace: Trace::from_labels([
                Label::lstore(M1, x(2), Val(1)),
                Label::rflush(M1, x(2)),
                Label::crash(M2),
                Label::load(M1, x(2), Val(0)),
            ]),
            expected: base(Verdict::Forbidden),
        },
        Litmus {
            name: "test-06".into(),
            description: "loads copy into the reader's cache, protecting against writer crash"
                .into(),
            config: three.clone(),
            trace: Trace::from_labels([
                Label::lstore(M1, x(3), Val(1)),
                Label::load(M2, x(3), Val(1)),
                Label::crash(M1),
                Label::load(M2, x(3), Val(0)),
            ]),
            expected: base(Verdict::Forbidden),
        },
        Litmus {
            name: "test-07".into(),
            description: "the reader's flush pushes the value to the owner before both crash"
                .into(),
            config: three,
            trace: Trace::from_labels([
                Label::lstore(M1, x(3), Val(1)),
                Label::load(M2, x(3), Val(1)),
                Label::lflush(M2, x(3)),
                Label::crash(M1),
                Label::crash(M2),
                Label::load(M2, x(3), Val(0)),
            ]),
            expected: base(Verdict::Forbidden),
        },
        Litmus {
            name: "test-08".into(),
            description: "a value observed by another operation may still be lost (RStore)".into(),
            config: two.clone(),
            trace: Trace::from_labels([
                Label::rstore(M1, x(2), Val(1)),
                // RStore₂(y₁, x₂) shorthand, expanded:
                Label::load(M2, x(2), Val(1)),
                Label::rstore(M2, x(1), Val(1)),
                Label::crash(M2),
                Label::load(M1, x(1), Val(1)),
                Label::load(M1, x(2), Val(0)),
            ]),
            expected: base(Verdict::Allowed),
        },
        Litmus {
            name: "test-09".into(),
            description: "MStore for the first write rules out the inconsistent recovery".into(),
            config: two,
            trace: Trace::from_labels([
                Label::mstore(M1, x(2), Val(1)),
                Label::load(M2, x(2), Val(1)),
                Label::rstore(M2, x(1), Val(1)),
                Label::crash(M2),
                Label::load(M1, x(1), Val(1)),
                Label::load(M1, x(2), Val(0)),
            ]),
            expected: base(Verdict::Forbidden),
        },
    ]
}

/// §3.5, tests 10–12: machine 1 has NVMM, machine 2 volatile memory.
/// Verdict triples are reported as (CXL0, CXL0_LWB, CXL0_PSN).
pub fn variant_tests() -> Vec<Litmus> {
    let cfg = SystemConfig::new(vec![
        MachineConfig::non_volatile(1),
        MachineConfig::volatile(1),
    ]);
    let triple = |b, l, p| {
        vec![
            (ModelVariant::Base, b),
            (ModelVariant::Lwb, l),
            (ModelVariant::Psn, p),
        ]
    };
    vec![
        Litmus {
            name: "test-10".into(),
            description: "remote update observed then lost: LWB forbids, PSN allows".into(),
            config: cfg.clone(),
            trace: Trace::from_labels([
                Label::rstore(M2, x(1), Val(1)),
                Label::load(M2, x(1), Val(1)),
                Label::crash(M1),
                Label::load(M2, x(1), Val(0)),
            ]),
            expected: triple(Verdict::Allowed, Verdict::Forbidden, Verdict::Allowed),
        },
        Litmus {
            name: "test-11".into(),
            description: "owner's LStore observed remotely then lost: LWB forbids".into(),
            config: cfg.clone(),
            trace: Trace::from_labels([
                Label::lstore(M1, x(1), Val(1)),
                Label::load(M2, x(1), Val(1)),
                Label::crash(M1),
                Label::load(M1, x(1), Val(0)),
            ]),
            expected: triple(Verdict::Allowed, Verdict::Forbidden, Verdict::Allowed),
        },
        Litmus {
            name: "test-12".into(),
            description: "inconsistency across consecutive crashes: PSN forbids".into(),
            config: cfg,
            trace: Trace::from_labels([
                Label::lstore(M2, x(1), Val(1)),
                Label::crash(M1),
                Label::load(M1, x(1), Val(1)),
                Label::crash(M1),
                Label::load(M2, x(1), Val(0)),
            ]),
            expected: triple(Verdict::Allowed, Verdict::Allowed, Verdict::Forbidden),
        },
    ]
}

/// §6's motivating example (test 13): on machine 1, `x=1; r1=x; r2=x;`
/// with `x ∈ Loc_M2` — the `assert(r1 == r2)` can fail if machine 2
/// crashes between the two reads, because the plain store is an `LStore`
/// whose propagated-but-unpersisted value is lost with machine 2.
pub fn motivating_example() -> Litmus {
    Litmus {
        name: "test-13".into(),
        description: "remote crash makes two consecutive local reads disagree".into(),
        config: SystemConfig::symmetric_nvm(2, 1),
        trace: Trace::from_labels([
            Label::lstore(M1, x(2), Val(1)),
            Label::load(M1, x(2), Val(1)),
            Label::crash(M2),
            Label::load(M1, x(2), Val(0)),
        ]),
        expected: base(Verdict::Allowed),
    }
}

/// All paper litmus tests: Figure 3, the variant triples, and test 13.
pub fn all_tests() -> Vec<Litmus> {
    let mut tests = figure3_tests();
    tests.extend(variant_tests());
    tests.push(motivating_example());
    tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::run_suite;

    #[test]
    fn figure3_all_match_paper() {
        let report = run_suite(&figure3_tests());
        assert!(report.all_pass(), "mismatches:\n{report}");
        assert_eq!(report.outcomes.len(), 9);
    }

    #[test]
    fn variant_triples_match_paper() {
        let report = run_suite(&variant_tests());
        assert!(report.all_pass(), "mismatches:\n{report}");
        assert_eq!(report.outcomes.len(), 9); // 3 tests × 3 variants
    }

    #[test]
    fn motivating_example_is_allowed() {
        assert!(motivating_example().passes());
    }

    #[test]
    fn suite_has_thirteen_tests() {
        assert_eq!(all_tests().len(), 13);
    }

    #[test]
    fn test_names_are_unique() {
        let tests = all_tests();
        let mut names: Vec<_> = tests.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), tests.len());
    }
}
