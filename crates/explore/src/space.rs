//! Bounded explicit-state exploration: enumerate every state reachable
//! under a finite label alphabet, producing a graph that the Proposition-1
//! checker, the refinement checker and the DOT exporter all consume.

use std::collections::{BTreeSet, HashMap, VecDeque};

use cxl0_model::{
    Label, MachineId, Primitive, Semantics, SilentStep, State, StoreKind, SystemConfig, Val,
};

/// Builds the finite label alphabet used to drive exploration and
/// refinement: every instantiation of the selected primitives over the
/// configuration's machines, locations and a small value domain.
///
/// # Examples
///
/// ```
/// use cxl0_explore::AlphabetBuilder;
/// use cxl0_model::{SystemConfig, Primitive, Val};
///
/// let cfg = SystemConfig::symmetric_nvm(2, 1);
/// let alphabet = AlphabetBuilder::new(&cfg)
///     .values([Val(0), Val(1)])
///     .primitives([Primitive::LStore, Primitive::Load, Primitive::Crash])
///     .build();
/// // 2 machines × 2 locs × 2 vals stores + same for loads + 2 crashes:
/// assert_eq!(alphabet.len(), 2 * 2 * 2 + 2 * 2 * 2 + 2);
/// ```
#[derive(Debug, Clone)]
pub struct AlphabetBuilder {
    cfg: SystemConfig,
    values: Vec<Val>,
    primitives: Vec<Primitive>,
}

impl AlphabetBuilder {
    /// Starts a builder over `cfg` with values `{0, 1}` and every
    /// primitive enabled.
    pub fn new(cfg: &SystemConfig) -> Self {
        AlphabetBuilder {
            cfg: cfg.clone(),
            values: vec![Val(0), Val(1)],
            primitives: Primitive::ISSUED
                .iter()
                .copied()
                .chain([Primitive::Crash])
                .collect(),
        }
    }

    /// Replaces the value domain.
    pub fn values<I: IntoIterator<Item = Val>>(mut self, vals: I) -> Self {
        self.values = vals.into_iter().collect();
        self
    }

    /// Replaces the primitive selection.
    pub fn primitives<I: IntoIterator<Item = Primitive>>(mut self, prims: I) -> Self {
        self.primitives = prims.into_iter().collect();
        self
    }

    /// Generates the alphabet.
    pub fn build(&self) -> Vec<Label> {
        let mut out = Vec::new();
        let machines: Vec<MachineId> = self.cfg.machines().collect();
        let locs: Vec<_> = self.cfg.all_locations().collect();
        for &p in &self.primitives {
            match p {
                Primitive::Load => {
                    for &m in &machines {
                        for &loc in &locs {
                            for &v in &self.values {
                                out.push(Label::load(m, loc, v));
                            }
                        }
                    }
                }
                Primitive::LStore | Primitive::RStore | Primitive::MStore => {
                    let kind = match p {
                        Primitive::LStore => StoreKind::Local,
                        Primitive::RStore => StoreKind::Remote,
                        _ => StoreKind::Memory,
                    };
                    for &m in &machines {
                        for &loc in &locs {
                            for &v in &self.values {
                                out.push(Label::store(kind, m, loc, v));
                            }
                        }
                    }
                }
                Primitive::LFlush => {
                    for &m in &machines {
                        for &loc in &locs {
                            out.push(Label::lflush(m, loc));
                        }
                    }
                }
                Primitive::RFlush => {
                    for &m in &machines {
                        for &loc in &locs {
                            out.push(Label::rflush(m, loc));
                        }
                    }
                }
                Primitive::Gpf => {
                    for &m in &machines {
                        out.push(Label::gpf(m));
                    }
                }
                Primitive::LRmw | Primitive::RRmw | Primitive::MRmw => {
                    let kind = match p {
                        Primitive::LRmw => StoreKind::Local,
                        Primitive::RRmw => StoreKind::Remote,
                        _ => StoreKind::Memory,
                    };
                    for &m in &machines {
                        for &loc in &locs {
                            for &old in &self.values {
                                for &new in &self.values {
                                    out.push(Label::rmw(kind, m, loc, old, new));
                                }
                            }
                        }
                    }
                }
                Primitive::Crash => {
                    for &m in &machines {
                        out.push(Label::crash(m));
                    }
                }
            }
        }
        out
    }
}

/// An edge of the explored transition graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edge {
    /// A visible transition.
    Visible(Label),
    /// A silent propagation step.
    Silent(SilentStep),
}

/// The graph of all states reachable from the initial state under a label
/// alphabet (plus silent steps), up to optional limits.
#[derive(Debug, Clone)]
pub struct ReachableGraph {
    /// Deduplicated states; index 0 is the initial state.
    pub states: Vec<State>,
    /// Edges as `(from_index, edge, to_index)`.
    pub edges: Vec<(usize, Edge, usize)>,
    /// True if exploration stopped because a limit was hit.
    pub truncated: bool,
}

impl ReachableGraph {
    /// Number of distinct states discovered.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of edges discovered.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Explores the reachable state space breadth-first.
///
/// `max_states` bounds the number of distinct states (the graph is marked
/// [`ReachableGraph::truncated`] if the bound is hit).
pub fn explore(sem: &Semantics, alphabet: &[Label], max_states: usize) -> ReachableGraph {
    let init = sem.initial_state();
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut states = vec![init.clone()];
    index.insert(init.clone(), 0);
    let mut edges = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(0usize);
    let mut truncated = false;

    while let Some(i) = queue.pop_front() {
        let st = states[i].clone();
        // Silent successors.
        for step in sem.silent_steps(&st) {
            let next = sem
                .apply_silent(&st, &step)
                .expect("enumerated silent step must be enabled");
            let j = intern(&mut index, &mut states, &mut queue, next, max_states);
            match j {
                Some(j) => edges.push((i, Edge::Silent(step), j)),
                None => truncated = true,
            }
        }
        // Visible successors.
        for label in alphabet {
            if let Ok(next) = sem.apply(&st, label) {
                let j = intern(&mut index, &mut states, &mut queue, next, max_states);
                match j {
                    Some(j) => edges.push((i, Edge::Visible(*label), j)),
                    None => truncated = true,
                }
            }
        }
    }

    ReachableGraph {
        states,
        edges,
        truncated,
    }
}

fn intern(
    index: &mut HashMap<State, usize>,
    states: &mut Vec<State>,
    queue: &mut VecDeque<usize>,
    st: State,
    max_states: usize,
) -> Option<usize> {
    if let Some(&j) = index.get(&st) {
        return Some(j);
    }
    if states.len() >= max_states {
        return None;
    }
    let j = states.len();
    states.push(st.clone());
    index.insert(st, j);
    queue.push_back(j);
    Some(j)
}

/// Convenience: the deduplicated set of reachable states.
pub fn reachable_states(sem: &Semantics, alphabet: &[Label], max_states: usize) -> Vec<State> {
    explore(sem, alphabet, max_states).states
}

/// Checks that the global cache invariant holds in every reachable state.
///
/// # Errors
///
/// Returns the first violating state (pretty-printed).
pub fn check_invariant_everywhere(
    sem: &Semantics,
    alphabet: &[Label],
    max_states: usize,
) -> Result<usize, String> {
    let graph = explore(sem, alphabet, max_states);
    for st in &graph.states {
        st.check_invariant()
            .map_err(|e| format!("{e}\nin state:\n{st}"))?;
    }
    Ok(graph.num_states())
}

/// The set of visible traces of length ≤ `depth`, as label sequences.
/// Exponential; only usable for tiny alphabets — intended for
/// cross-checking the refinement checker.
pub fn bounded_traces(sem: &Semantics, alphabet: &[Label], depth: usize) -> BTreeSet<Vec<Label>> {
    use crate::interp::{Explorer, StateSet};
    let exp = Explorer::new(sem);
    let mut out = BTreeSet::new();
    let mut frontier: Vec<(Vec<Label>, StateSet)> = vec![(Vec::new(), exp.initial_set())];
    out.insert(Vec::new());
    for _ in 0..depth {
        let mut next_frontier = Vec::new();
        for (trace, set) in &frontier {
            for label in alphabet {
                let next = exp.after_label(set, label);
                if !next.is_empty() {
                    let mut t = trace.clone();
                    t.push(*label);
                    if out.insert(t.clone()) {
                        next_frontier.push((t, next));
                    }
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_counts_for_full_default() {
        let cfg = SystemConfig::symmetric_nvm(2, 1);
        let alphabet = AlphabetBuilder::new(&cfg).build();
        // loads 2*2*2=8, stores 3*8=24, flushes 2*2*2=8, gpf 2, rmw 3*2*2*4=48, crash 2.
        assert_eq!(alphabet.len(), 8 + 24 + 8 + 2 + 48 + 2);
    }

    #[test]
    fn exploration_small_system_is_exhaustive() {
        let cfg = SystemConfig::symmetric_nvm(1, 1);
        let sem = Semantics::new(cfg.clone());
        let alphabet = AlphabetBuilder::new(&cfg)
            .primitives([
                Primitive::LStore,
                Primitive::MStore,
                Primitive::Load,
                Primitive::Crash,
            ])
            .build();
        let graph = explore(&sem, &alphabet, 10_000);
        assert!(!graph.truncated);
        // 1 machine, 1 loc, vals {0,1}: cache ∈ {⊥,0,1} × mem ∈ {0,1} = 6 states,
        // all reachable.
        assert_eq!(graph.num_states(), 6);
        assert!(graph.num_edges() > 0);
    }

    #[test]
    fn invariant_holds_everywhere_small() {
        let cfg = SystemConfig::symmetric_nvm(2, 1);
        let sem = Semantics::new(cfg.clone());
        let alphabet = AlphabetBuilder::new(&cfg).build();
        let n = check_invariant_everywhere(&sem, &alphabet, 100_000).unwrap();
        assert!(n > 10);
    }

    #[test]
    fn truncation_is_flagged() {
        let cfg = SystemConfig::symmetric_nvm(2, 2);
        let sem = Semantics::new(cfg.clone());
        let alphabet = AlphabetBuilder::new(&cfg).build();
        let graph = explore(&sem, &alphabet, 5);
        assert!(graph.truncated);
        assert_eq!(graph.num_states(), 5);
    }

    #[test]
    fn bounded_traces_contains_empty_and_grows() {
        let cfg = SystemConfig::symmetric_nvm(1, 1);
        let sem = Semantics::new(cfg.clone());
        let alphabet = AlphabetBuilder::new(&cfg)
            .primitives([Primitive::MStore, Primitive::Load])
            .values([Val(1)])
            .build();
        let t0 = bounded_traces(&sem, &alphabet, 0);
        assert_eq!(t0.len(), 1);
        let t2 = bounded_traces(&sem, &alphabet, 2);
        assert!(t2.len() > 1);
        // A Load(x,1) alone is not executable (initial value is 0):
        let load1 = vec![alphabet
            .iter()
            .copied()
            .find(|l| matches!(l, Label::Load { .. }))
            .unwrap()];
        assert!(!t2.contains(&load1));
    }
}
