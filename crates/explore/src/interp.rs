//! The nondeterministic interpreter: lifts the per-label semantics of
//! `cxl0-model` to the paper's `γ ⟹ γ′` relation, in which visible labels
//! may be interleaved with arbitrary silent `τ` propagation steps.
//!
//! Because the CXL0 semantics is deterministic per visible label, the set
//! of states reachable after a trace is computed by alternating
//! *τ-closure* (saturating under propagation) and *label application*.
//! These state sets are exactly the subsets used by a determinized view of
//! the LTS, which the refinement checker builds products of.

use std::collections::BTreeSet;

use cxl0_model::{Label, Semantics, State, Trace};

/// A canonical set of states (τ-closures are represented this way so that
/// they can be hashed and compared during product exploration).
pub type StateSet = BTreeSet<State>;

/// Interprets traces under a fixed [`Semantics`].
///
/// # Examples
///
/// ```
/// use cxl0_explore::Explorer;
/// use cxl0_model::{Semantics, SystemConfig, Label, Loc, MachineId, Val, Trace};
///
/// let sem = Semantics::new(SystemConfig::symmetric_nvm(1, 1));
/// let exp = Explorer::new(&sem);
/// let x = Loc::new(MachineId(0), 0);
///
/// // Litmus test 1: an RStore may be lost on crash.
/// let t = Trace::from_labels([
///     Label::rstore(MachineId(0), x, Val(1)),
///     Label::crash(MachineId(0)),
///     Label::load(MachineId(0), x, Val(0)),
/// ]);
/// assert!(exp.is_allowed(&t));
///
/// // Litmus test 2: an MStore cannot be lost.
/// let t = Trace::from_labels([
///     Label::mstore(MachineId(0), x, Val(1)),
///     Label::crash(MachineId(0)),
///     Label::load(MachineId(0), x, Val(0)),
/// ]);
/// assert!(!exp.is_allowed(&t));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Explorer<'a> {
    sem: &'a Semantics,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer over the given semantics.
    pub fn new(sem: &'a Semantics) -> Self {
        Explorer { sem }
    }

    /// The underlying semantics.
    pub fn semantics(&self) -> &'a Semantics {
        self.sem
    }

    /// The τ-closed singleton of the initial state.
    pub fn initial_set(&self) -> StateSet {
        let mut s = StateSet::new();
        s.insert(self.sem.initial_state());
        self.tau_closure(&s)
    }

    /// All states reachable from `set` by zero or more silent propagation
    /// steps (a fixpoint; always terminates because propagation strictly
    /// moves values toward memory and the state space is finite).
    pub fn tau_closure(&self, set: &StateSet) -> StateSet {
        let mut closed: StateSet = set.clone();
        let mut frontier: Vec<State> = set.iter().cloned().collect();
        while let Some(st) = frontier.pop() {
            for step in self.sem.silent_steps(&st) {
                let next = self
                    .sem
                    .apply_silent(&st, &step)
                    .expect("enumerated silent step must be enabled");
                if closed.insert(next.clone()) {
                    frontier.push(next);
                }
            }
        }
        closed
    }

    /// Applies one visible label to every state in `set` (states where the
    /// label is blocked or mismatching simply drop out), without silent
    /// steps.
    pub fn apply_label(&self, set: &StateSet, label: &Label) -> StateSet {
        set.iter()
            .filter_map(|st| self.sem.apply(st, label).ok())
            .collect()
    }

    /// The `⟹` step for one label: τ-closure, then the label, then
    /// τ-closure again. Input need not be τ-closed.
    pub fn after_label(&self, set: &StateSet, label: &Label) -> StateSet {
        let closed = self.tau_closure(set);
        let stepped = self.apply_label(&closed, label);
        self.tau_closure(&stepped)
    }

    /// The `⟹` relation for a whole trace starting from `set`.
    pub fn after_trace(&self, set: &StateSet, trace: &Trace) -> StateSet {
        let mut cur = self.tau_closure(set);
        for label in trace {
            if cur.is_empty() {
                break;
            }
            cur = self.after_label(&cur, label);
        }
        cur
    }

    /// The states reachable from the initial state via `trace` (with τ
    /// steps interleaved freely).
    pub fn run_trace(&self, trace: &Trace) -> StateSet {
        self.after_trace(&self.initial_set(), trace)
    }

    /// Whether `trace` is executable from the initial state — i.e. whether
    /// the behavior it describes is *allowed* by the model.
    pub fn is_allowed(&self, trace: &Trace) -> bool {
        !self.run_trace(trace).is_empty()
    }

    /// Whether two label sequences lead to exactly the same τ-closed state
    /// sets from `set` — the workhorse for Proposition-1 style equivalence
    /// checks.
    pub fn same_outcomes(&self, set: &StateSet, a: &Trace, b: &Trace) -> bool {
        self.after_trace(set, a) == self.after_trace(set, b)
    }

    /// Whether every outcome of `a` is an outcome of `b` from `set`
    /// (`S(a) ⊆ S(b)` in the Prop.-1 reading of "`b` can simulate `a`").
    pub fn simulates(&self, set: &StateSet, a: &Trace, b: &Trace) -> bool {
        self.after_trace(set, a)
            .is_subset(&self.after_trace(set, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl0_model::{Loc, MachineId, SystemConfig, Val};

    const M0: MachineId = MachineId(0);
    const M1: MachineId = MachineId(1);

    fn sem2() -> Semantics {
        Semantics::new(SystemConfig::symmetric_nvm(2, 1))
    }

    fn x(o: usize) -> Loc {
        Loc::new(MachineId(o), 0)
    }

    #[test]
    fn tau_closure_saturates_both_propagation_kinds() {
        let sem = sem2();
        let exp = Explorer::new(&sem);
        let st = sem
            .apply(&sem.initial_state(), &Label::lstore(M0, x(1), Val(1)))
            .unwrap();
        let mut set = StateSet::new();
        set.insert(st);
        let closed = exp.tau_closure(&set);
        // States: {C0=1}, {C1=1} (after C-C), {M=1} (after C-M).
        assert_eq!(closed.len(), 3);
        assert!(closed.iter().any(|s| s.memory(x(1)) == Val(1)));
    }

    #[test]
    fn after_label_filters_blocked_branches() {
        let sem = sem2();
        let exp = Explorer::new(&sem);
        let set = exp.initial_set();
        let set = exp.after_label(&set, &Label::lstore(M0, x(1), Val(1)));
        // RFlush only proceeds on the branch where propagation completed.
        let flushed = exp.after_label(&set, &Label::rflush(M0, x(1)));
        assert!(!flushed.is_empty());
        for st in &flushed {
            assert_eq!(st.memory(x(1)), Val(1));
            assert!(st.no_cache_holds(x(1)));
        }
    }

    #[test]
    fn run_trace_empty_trace_is_initial_closure() {
        let sem = sem2();
        let exp = Explorer::new(&sem);
        let set = exp.run_trace(&Trace::new());
        assert_eq!(set.len(), 1); // initial state has nothing to propagate
    }

    #[test]
    fn load_observation_disambiguates() {
        let sem = sem2();
        let exp = Explorer::new(&sem);
        // After a crash of the owner, a load of x(1) must see 0 even though
        // it saw 1 before the crash.
        let t = Trace::from_labels([
            Label::lstore(M0, x(1), Val(1)),
            Label::load(M1, x(1), Val(1)),
            Label::crash(M0),
        ]);
        let set = exp.run_trace(&t);
        assert!(!set.is_empty());
        // Both observations remain possible depending on propagation:
        let sees1 = exp.after_label(&set, &Label::load(M1, x(1), Val(1)));
        let sees0 = exp.after_label(&set, &Label::load(M1, x(1), Val(0)));
        assert!(!sees1.is_empty());
        // 0 requires m1's copy to have drained and been wiped — m1 never
        // crashed and the owner is m1 itself, so its copy persists in cache
        // or memory; 0 must be impossible here.
        assert!(sees0.is_empty());
    }

    #[test]
    fn simulates_and_same_outcomes_agree_on_owner_stores() {
        let sem = sem2();
        let exp = Explorer::new(&sem);
        let set = exp.initial_set();
        let ls = Trace::from_labels([Label::lstore(M1, x(1), Val(1))]);
        let rs = Trace::from_labels([Label::rstore(M1, x(1), Val(1))]);
        assert!(exp.same_outcomes(&set, &ls, &rs));
        assert!(exp.simulates(&set, &ls, &rs));
        assert!(exp.simulates(&set, &rs, &ls));
    }
}
