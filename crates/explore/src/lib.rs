//! # `cxl0-explore` — explicit-state exploration for the CXL0 model
//!
//! This crate turns the per-step semantics of [`cxl0_model`] into the
//! paper's full `γ ⟹ γ′` relation and builds four analyses on top:
//!
//! * [`interp`] — the nondeterministic interpreter (τ-closure, label
//!   application, trace executability);
//! * [`litmus`] / [`paper`] — the litmus-test engine and the paper's 13
//!   tests (Fig. 3 tests 1–9, §3.5 tests 10–12, §6 test 13);
//! * [`space`] — bounded reachable-state exploration, invariant checking,
//!   and label-alphabet generation;
//! * [`simulate`] — exhaustive checking of Proposition 1 (the paper's Rocq
//!   proofs, rechecked over finite configurations);
//! * [`refine`] — bounded trace refinement between model variants (the
//!   paper's FDR4/CSP analysis);
//! * [`asyncinterp`] / [`paper_async`] — the same machinery for the
//!   `CXL0_AF` asynchronous-flush extension (§3.2's persistency-buffer
//!   sketch), with its `A1`–`A8` litmus suite and the
//!   `AFlush;Barrier ≡ RFlush` equivalence check;
//! * [`dot`] — Graphviz export of explored graphs.
//!
//! ## Example: running a paper litmus test
//!
//! ```
//! use cxl0_explore::{paper, litmus::run_suite};
//!
//! let report = run_suite(&paper::figure3_tests());
//! assert!(report.all_pass());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod asyncinterp;
pub mod dot;
pub mod interp;
pub mod litmus;
pub mod paper;
pub mod paper_async;
pub mod program;
pub mod refine;
pub mod simulate;
pub mod space;

pub use asyncinterp::{AsyncExplorer, AsyncStateSet};
pub use interp::{Explorer, StateSet};
pub use litmus::{Litmus, LitmusOutcome, SuiteReport, Verdict};
pub use program::{outcomes, Instr, Outcome, Program, Reg};
pub use refine::{check_refinement, incomparability_witnesses, Refinement};
pub use simulate::{check_all as check_proposition1, CounterExample, Prop1Item};
pub use space::{explore, AlphabetBuilder, Edge, ReachableGraph};
