//! Graphviz (DOT) export of explored transition graphs, for inspecting
//! small state spaces visually (e.g. the Figure-1 scenario).

use std::fmt::Write as _;

use crate::space::{Edge, ReachableGraph};

/// Renders the graph in Graphviz DOT syntax. Visible transitions are solid
/// edges labeled with the paper's notation; silent propagation steps are
/// dotted, matching Figure 1's convention.
pub fn to_dot(graph: &ReachableGraph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(
        out,
        "  node [shape=box, fontname=\"monospace\", fontsize=9];"
    );
    for (i, st) in graph.states.iter().enumerate() {
        let label = st.to_string().replace('\n', "\\l").replace('"', "'");
        let style = if i == 0 { ", penwidth=2" } else { "" };
        let _ = writeln!(out, "  s{i} [label=\"{label}\\l\"{style}];");
    }
    for (from, edge, to) in &graph.edges {
        match edge {
            Edge::Visible(label) => {
                let text = label.to_string().replace('"', "'");
                let _ = writeln!(out, "  s{from} -> s{to} [label=\"{text}\"];");
            }
            Edge::Silent(step) => {
                let text = step.to_string().replace('"', "'");
                let _ = writeln!(
                    out,
                    "  s{from} -> s{to} [label=\"{text}\", style=dotted, color=gray];"
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{explore, AlphabetBuilder};
    use cxl0_model::{Primitive, Semantics, SystemConfig};

    #[test]
    fn dot_output_is_well_formed() {
        let cfg = SystemConfig::symmetric_nvm(1, 1);
        let sem = Semantics::new(cfg.clone());
        let alphabet = AlphabetBuilder::new(&cfg)
            .primitives([Primitive::LStore, Primitive::Crash])
            .build();
        let graph = explore(&sem, &alphabet, 100);
        let dot = to_dot(&graph, "demo");
        assert!(dot.starts_with("digraph \"demo\" {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("s0 ["));
        assert!(dot.contains("->"));
        assert!(
            dot.contains("style=dotted")
                || graph
                    .edges
                    .iter()
                    .all(|(_, e, _)| matches!(e, super::Edge::Visible(_)))
        );
    }
}
