//! Litmus tests: named traces with expected allowed/forbidden verdicts per
//! model variant, and a runner that checks them against the semantics.
//!
//! This is the executable form of the paper's Figure 3 (tests 1–9), the
//! §3.5 variant-comparison tests (10–12), and the §6 motivating example
//! (test 13).

use std::fmt;

use cxl0_model::{ModelVariant, Semantics, SystemConfig, Trace};

use crate::interp::Explorer;

/// Whether a behavior is allowed (✔) or forbidden (✗) by a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The trace is executable: the model allows the behavior.
    Allowed,
    /// No execution produces the trace: the behavior is forbidden.
    Forbidden,
}

impl Verdict {
    /// `✔` or `✗`, as printed in the paper.
    pub fn symbol(self) -> &'static str {
        match self {
            Verdict::Allowed => "✔",
            Verdict::Forbidden => "✗",
        }
    }

    /// Creates a verdict from an executability flag.
    pub fn from_allowed(allowed: bool) -> Self {
        if allowed {
            Verdict::Allowed
        } else {
            Verdict::Forbidden
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A litmus test: a trace over a configuration, with expected verdicts for
/// one or more model variants.
#[derive(Debug, Clone)]
pub struct Litmus {
    /// Short name, e.g. `"test-01"`.
    pub name: String,
    /// Human-readable description of what the test demonstrates.
    pub description: String,
    /// The system configuration the trace runs over.
    pub config: SystemConfig,
    /// The trace of visible labels (in execution order, as in Fig. 3).
    pub trace: Trace,
    /// Expected verdicts, per variant. Only variants listed here are
    /// asserted by [`Litmus::check`].
    pub expected: Vec<(ModelVariant, Verdict)>,
}

impl Litmus {
    /// The expected verdict under `variant`, if the paper states one.
    pub fn expected_for(&self, variant: ModelVariant) -> Option<Verdict> {
        self.expected
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|(_, verdict)| *verdict)
    }

    /// Runs the test under `variant` and returns the observed verdict.
    pub fn run(&self, variant: ModelVariant) -> Verdict {
        let sem = Semantics::with_variant(self.config.clone(), variant);
        let exp = Explorer::new(&sem);
        Verdict::from_allowed(exp.is_allowed(&self.trace))
    }

    /// Runs the test under every variant with a stated expectation.
    pub fn check(&self) -> Vec<LitmusOutcome> {
        self.expected
            .iter()
            .map(|&(variant, expected)| {
                let observed = self.run(variant);
                LitmusOutcome {
                    name: self.name.clone(),
                    variant,
                    expected,
                    observed,
                }
            })
            .collect()
    }

    /// True if every stated expectation matches the model.
    pub fn passes(&self) -> bool {
        self.check().iter().all(LitmusOutcome::pass)
    }
}

/// The outcome of running one litmus test under one variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusOutcome {
    /// The test's name.
    pub name: String,
    /// The variant it ran under.
    pub variant: ModelVariant,
    /// The verdict the paper states.
    pub expected: Verdict,
    /// The verdict the implementation computed.
    pub observed: Verdict,
}

impl LitmusOutcome {
    /// Whether observed matches expected.
    pub fn pass(&self) -> bool {
        self.expected == self.observed
    }
}

impl fmt::Display for LitmusOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<9} expected {} observed {} [{}]",
            self.name,
            self.variant.to_string(),
            self.expected,
            self.observed,
            if self.pass() { "PASS" } else { "FAIL" }
        )
    }
}

/// Runs a whole suite and formats a Figure-3-style report.
pub fn run_suite(tests: &[Litmus]) -> SuiteReport {
    let mut outcomes = Vec::new();
    for t in tests {
        outcomes.extend(t.check());
    }
    SuiteReport { outcomes }
}

/// Aggregated results of a litmus suite run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// All individual outcomes.
    pub outcomes: Vec<LitmusOutcome>,
}

impl SuiteReport {
    /// Number of matching outcomes.
    pub fn passed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.pass()).count()
    }

    /// Number of mismatching outcomes.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.passed()
    }

    /// True if every outcome matches the paper.
    pub fn all_pass(&self) -> bool {
        self.failed() == 0
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.outcomes {
            writeln!(f, "{o}")?;
        }
        write!(
            f,
            "{} passed, {} failed, {} total",
            self.passed(),
            self.failed(),
            self.outcomes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl0_model::{Label, Loc, MachineId, Val};

    fn simple_litmus(expect: Verdict) -> Litmus {
        let x = Loc::new(MachineId(0), 0);
        Litmus {
            name: "demo".into(),
            description: "RStore lost on crash".into(),
            config: SystemConfig::symmetric_nvm(1, 1),
            trace: Trace::from_labels([
                Label::rstore(MachineId(0), x, Val(1)),
                Label::crash(MachineId(0)),
                Label::load(MachineId(0), x, Val(0)),
            ]),
            expected: vec![(ModelVariant::Base, expect)],
        }
    }

    #[test]
    fn verdict_symbols() {
        assert_eq!(Verdict::Allowed.symbol(), "✔");
        assert_eq!(Verdict::Forbidden.symbol(), "✗");
        assert_eq!(Verdict::from_allowed(true), Verdict::Allowed);
    }

    #[test]
    fn passing_litmus_reports_pass() {
        let l = simple_litmus(Verdict::Allowed);
        assert!(l.passes());
        let outcomes = l.check();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].pass());
        assert!(outcomes[0].to_string().contains("PASS"));
    }

    #[test]
    fn failing_litmus_reports_fail() {
        let l = simple_litmus(Verdict::Forbidden);
        assert!(!l.passes());
        assert!(l.check()[0].to_string().contains("FAIL"));
    }

    #[test]
    fn suite_report_counts() {
        let suite = vec![
            simple_litmus(Verdict::Allowed),
            simple_litmus(Verdict::Forbidden),
        ];
        let report = run_suite(&suite);
        assert_eq!(report.passed(), 1);
        assert_eq!(report.failed(), 1);
        assert!(!report.all_pass());
        assert!(report.to_string().contains("1 passed, 1 failed"));
    }

    #[test]
    fn expected_for_lookup() {
        let l = simple_litmus(Verdict::Allowed);
        assert_eq!(l.expected_for(ModelVariant::Base), Some(Verdict::Allowed));
        assert_eq!(l.expected_for(ModelVariant::Psn), None);
    }
}
