//! Concurrent programs: per-machine instruction sequences whose
//! interleavings (and crash points) the explorer enumerates.
//!
//! The paper presents its litmus tests pre-serialized in execution order;
//! real multi-threaded code is a *set* of per-machine programs whose
//! interleaving is chosen by the scheduler. This module closes that gap:
//! it enumerates all interleavings of the machines' instruction streams —
//! with loads written as *placeholders* whose observed values the
//! exploration fills in — and reports every reachable outcome.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use cxl0_model::{Label, Loc, MachineId, Semantics, StoreKind, Val};

use crate::interp::Explorer;
use crate::interp::StateSet;

/// One instruction of a per-machine program. Loads and RMWs name a
/// *register* (an outcome slot) instead of hard-coding the observed
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Instr {
    /// Store with the given strength.
    Store(StoreKind, Loc, Val),
    /// Load into outcome register `reg`.
    Load(Loc, Reg),
    /// Local flush.
    LFlush(Loc),
    /// Remote flush.
    RFlush(Loc),
    /// Global persistent flush.
    Gpf,
    /// Compare-and-swap: on success stores `new`; records the observed
    /// value in `reg` (so a failed CAS is a read).
    Cas(StoreKind, Loc, Val, Val, Reg),
}

/// An outcome register: a named slot in the final outcome map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub &'static str);

/// A concurrent program: one instruction sequence per machine, plus a set
/// of crash events that may strike at any point.
#[derive(Debug, Clone, Default)]
pub struct Program {
    threads: Vec<(MachineId, Vec<Instr>)>,
    crashes: Vec<MachineId>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a machine's instruction sequence.
    pub fn thread(mut self, machine: MachineId, instrs: Vec<Instr>) -> Self {
        self.threads.push((machine, instrs));
        self
    }

    /// Allows machine `m` to crash (once) at any point during execution.
    pub fn may_crash(mut self, m: MachineId) -> Self {
        self.crashes.push(m);
        self
    }

    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|(_, is)| is.len()).sum()
    }

    /// True if no thread has instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A final outcome: the values observed by each named register.
pub type Outcome = BTreeMap<Reg, Val>;

/// Deduplication key for one DFS search node: per-thread program
/// counters, crash flags, admissible model states, and the partial
/// register outcome.
type SearchKey = (
    Vec<usize>,
    Vec<bool>,
    Vec<cxl0_model::State>,
    Vec<(Reg, Val)>,
);

/// Enumerates every reachable outcome of `program` under `sem`:
/// all interleavings of the threads' instructions, all placements of the
/// optional crash events, all propagation choices, and all load results.
pub fn outcomes(sem: &Semantics, program: &Program) -> BTreeSet<Outcome> {
    let exp = Explorer::new(sem);
    let mut results = BTreeSet::new();
    // Search node: per-thread program counter, crash flags, state set,
    // partial outcome.
    let pcs = vec![0usize; program.threads.len()];
    let crashed = vec![false; program.crashes.len()];
    let init = exp.initial_set();
    let mut seen = BTreeSet::new();
    dfs(
        &exp,
        program,
        &pcs,
        &crashed,
        &init,
        &Outcome::new(),
        &mut results,
        &mut seen,
    );
    results
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    exp: &Explorer<'_>,
    program: &Program,
    pcs: &[usize],
    crashed: &[bool],
    states: &StateSet,
    outcome: &Outcome,
    results: &mut BTreeSet<Outcome>,
    seen: &mut BTreeSet<SearchKey>,
) {
    // Dedup on the full search node to avoid exponential revisits.
    let key = (
        pcs.to_vec(),
        crashed.to_vec(),
        states.iter().cloned().collect::<Vec<_>>(),
        outcome.iter().map(|(r, v)| (*r, *v)).collect::<Vec<_>>(),
    );
    if !seen.insert(key) {
        return;
    }

    let done = program
        .threads
        .iter()
        .enumerate()
        .all(|(t, (_, instrs))| pcs[t] >= instrs.len());
    if done {
        results.insert(outcome.clone());
        return;
    }

    // Choice 1: step any thread with remaining instructions.
    for (t, (machine, instrs)) in program.threads.iter().enumerate() {
        if pcs[t] >= instrs.len() {
            continue;
        }
        let instr = instrs[pcs[t]];
        let mut next_pcs = pcs.to_vec();
        next_pcs[t] += 1;
        match instr {
            Instr::Store(kind, loc, v) => {
                let next = exp.after_label(states, &Label::store(kind, *machine, loc, v));
                if !next.is_empty() {
                    dfs(
                        exp, program, &next_pcs, crashed, &next, outcome, results, seen,
                    );
                }
            }
            Instr::LFlush(loc) => {
                let next = exp.after_label(states, &Label::lflush(*machine, loc));
                if !next.is_empty() {
                    dfs(
                        exp, program, &next_pcs, crashed, &next, outcome, results, seen,
                    );
                }
            }
            Instr::RFlush(loc) => {
                let next = exp.after_label(states, &Label::rflush(*machine, loc));
                if !next.is_empty() {
                    dfs(
                        exp, program, &next_pcs, crashed, &next, outcome, results, seen,
                    );
                }
            }
            Instr::Gpf => {
                let next = exp.after_label(states, &Label::gpf(*machine));
                if !next.is_empty() {
                    dfs(
                        exp, program, &next_pcs, crashed, &next, outcome, results, seen,
                    );
                }
            }
            Instr::Load(loc, reg) => {
                // Branch on every observable value.
                for v in observable_values(states, loc) {
                    let next = exp.after_label(states, &Label::load(*machine, loc, v));
                    if !next.is_empty() {
                        let mut o = outcome.clone();
                        o.insert(reg, v);
                        dfs(exp, program, &next_pcs, crashed, &next, &o, results, seen);
                    }
                }
            }
            Instr::Cas(kind, loc, old, new, reg) => {
                for v in observable_values(states, loc) {
                    let (label, observed) = if v == old {
                        (Label::rmw(kind, *machine, loc, old, new), old)
                    } else {
                        (Label::load(*machine, loc, v), v)
                    };
                    let next = exp.after_label(states, &label);
                    if !next.is_empty() {
                        let mut o = outcome.clone();
                        o.insert(reg, observed);
                        dfs(exp, program, &next_pcs, crashed, &next, &o, results, seen);
                    }
                }
            }
        }
    }

    // Choice 2: fire a pending crash.
    for (c, m) in program.crashes.iter().enumerate() {
        if crashed[c] {
            continue;
        }
        let mut next_crashed = crashed.to_vec();
        next_crashed[c] = true;
        let next = exp.after_label(states, &Label::crash(*m));
        if !next.is_empty() {
            dfs(
                exp,
                program,
                pcs,
                &next_crashed,
                &next,
                outcome,
                results,
                seen,
            );
        }
    }
}

/// The values a load of `loc` can observe across `states` (each state has
/// a unique visible value; the set varies with propagation/crash timing).
fn observable_values(states: &StateSet, loc: Loc) -> BTreeSet<Val> {
    states.iter().map(|st| st.visible_value(loc)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl0_model::SystemConfig;

    const M1: MachineId = MachineId(0);
    const M2: MachineId = MachineId(1);

    fn x(owner: usize) -> Loc {
        Loc::new(MachineId(owner), 0)
    }

    /// §6's motivating example as a *program* (not a pre-serialized
    /// trace): x=1; r1=x; r2=x on machine 1, with machine 2 (the owner of
    /// x) allowed to crash. r1=1, r2=0 must be a reachable outcome.
    #[test]
    fn motivating_example_outcomes() {
        let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
        let r1 = Reg("r1");
        let r2 = Reg("r2");
        let prog = Program::new()
            .thread(
                M1,
                vec![
                    Instr::Store(StoreKind::Local, x(1), Val(1)),
                    Instr::Load(x(1), r1),
                    Instr::Load(x(1), r2),
                ],
            )
            .may_crash(M2);
        let outs = outcomes(&sem, &prog);
        let mut broken = Outcome::new();
        broken.insert(r1, Val(1));
        broken.insert(r2, Val(0));
        assert!(
            outs.contains(&broken),
            "assert(r1==r2) must be violable: {outs:?}"
        );
        // And the consistent outcome is of course also reachable:
        let mut fine = Outcome::new();
        fine.insert(r1, Val(1));
        fine.insert(r2, Val(1));
        assert!(outs.contains(&fine));
        // But never r1=0, r2=1 *with this thread alone*... actually 0
        // then 1 is impossible because nothing rewrites x after the
        // crash. Check:
        let mut weird = Outcome::new();
        weird.insert(r1, Val(0));
        weird.insert(r2, Val(1));
        assert!(!outs.contains(&weird));
    }

    /// Message passing: with MStore for the data word and an RStore flag,
    /// a reader that sees the flag must see the data — even if the data
    /// owner crashes (test 9's essence, concurrent form).
    #[test]
    fn message_passing_with_mstore_is_safe() {
        let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
        let rflag = Reg("flag");
        let rdata = Reg("data");
        // data = x(1) owned by m2; flag = x(0)... wait: one loc each.
        // data on m2, flag on m1.
        let data = x(1);
        let flag = x(0);
        let prog = Program::new()
            .thread(
                M1,
                vec![
                    Instr::Store(StoreKind::Memory, data, Val(1)),
                    Instr::Store(StoreKind::Remote, flag, Val(1)),
                ],
            )
            .thread(M2, vec![Instr::Load(flag, rflag), Instr::Load(data, rdata)])
            .may_crash(M2);
        let outs = outcomes(&sem, &prog);
        for o in &outs {
            if o.get(&rflag) == Some(&Val(1)) && o.contains_key(&rdata) {
                // Flag observed ⇒ the MStore'd data must be visible...
                // unless the reader's load raced *before* the data write?
                // No: the writer orders MStore before RStore, and the
                // reader reads flag first. Data is persistent before the
                // flag exists, and m2's crash cannot erase NVM.
                assert_eq!(o.get(&rdata), Some(&Val(1)), "MP violation: {o:?}");
            }
        }
        // Sanity: the flag=1,data=1 outcome is reachable.
        assert!(outs
            .iter()
            .any(|o| o.get(&rflag) == Some(&Val(1)) && o.get(&rdata) == Some(&Val(1))));
    }

    /// The same message-passing pattern with a plain LStore for the data
    /// is unsafe: the flag can be seen while the data is lost to a crash.
    #[test]
    fn message_passing_with_lstore_is_unsafe() {
        let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
        let rflag = Reg("flag");
        let rdata = Reg("data");
        let data = x(1);
        let flag = x(0);
        let prog = Program::new()
            .thread(
                M1,
                vec![
                    Instr::Store(StoreKind::Local, data, Val(1)),
                    Instr::Store(StoreKind::Remote, flag, Val(1)),
                ],
            )
            .thread(M2, vec![Instr::Load(flag, rflag), Instr::Load(data, rdata)])
            .may_crash(M2);
        let outs = outcomes(&sem, &prog);
        assert!(
            outs.iter()
                .any(|o| o.get(&rflag) == Some(&Val(1)) && o.get(&rdata) == Some(&Val(0))),
            "LStore-based MP must be violable: {outs:?}"
        );
    }

    /// CAS branches: both success and failure paths are explored.
    #[test]
    fn cas_explores_both_branches() {
        let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
        let ra = Reg("a");
        let rb = Reg("b");
        let prog = Program::new()
            .thread(
                M1,
                vec![Instr::Cas(StoreKind::Local, x(0), Val(0), Val(1), ra)],
            )
            .thread(
                M2,
                vec![Instr::Cas(StoreKind::Local, x(0), Val(0), Val(2), rb)],
            );
        let outs = outcomes(&sem, &prog);
        // Exactly one CAS can win: outcomes are (0 observed by both is
        // impossible), (a=0,b=1), (a=2,b=0).
        let mut expected = BTreeSet::new();
        let mk = |a: u64, b: u64| {
            let mut o = Outcome::new();
            o.insert(ra, Val(a));
            o.insert(rb, Val(b));
            o
        };
        expected.insert(mk(0, 1));
        expected.insert(mk(2, 0));
        assert_eq!(outs, expected);
    }

    #[test]
    fn empty_program_has_empty_outcome() {
        let sem = Semantics::new(SystemConfig::symmetric_nvm(1, 1));
        let outs = outcomes(&sem, &Program::new());
        assert_eq!(outs.len(), 1);
        assert!(outs.iter().next().unwrap().is_empty());
        assert!(Program::new().is_empty());
    }
}
