//! Litmus tests for the `CXL0_AF` asynchronous-flush extension (§3.2,
//! *Limitations of CXL* — the extension the paper sketches via persistency
//! buffers).
//!
//! Tests are named `A1`–`A8` and follow the paper's conventions: machine
//! *1* is `MachineId(0)`, `xᵢ` is the location owned by machine *i*, and
//! all memory is non-volatile. The suite establishes:
//!
//! | Test | Behavior | Verdict |
//! |---|---|---|
//! | A1 | `AFlush` alone does not survive the *issuer's* crash | ✔ lossy |
//! | A2 | `AFlush; Barrier` persists before the issuer's crash | ✗ |
//! | A3 | `AFlush; Barrier` persists before the *owner's* crash (≙ test 5) | ✗ |
//! | A4 | un-barriered `AFlush` may lose the store to the owner's crash (≙ test 4) | ✔ |
//! | A5 | batching: two `AFlush`es under one `Barrier` persist both lines | ✗ |
//! | A6 | a `Barrier` only waits for the issuer's own buffer | ✔ lossy |
//! | A7 | `Barrier` with an empty buffer is a no-op (always enabled) | ✔ |
//! | A8 | a crash discards pending requests: post-crash `Barrier` proves nothing | ✔ lossy |

use cxl0_model::asyncflush::{AsyncLabel, AsyncSemantics};
use cxl0_model::{Label, Loc, MachineId, ModelVariant, SystemConfig, Val};

use crate::asyncinterp::AsyncExplorer;
use crate::litmus::Verdict;

const M1: MachineId = MachineId(0);
const M2: MachineId = MachineId(1);

/// `xᵢ`: the first location owned by the paper's machine `i` (1-based).
fn x(i: usize) -> Loc {
    Loc::new(MachineId(i - 1), 0)
}

/// `yᵢ`: the second location owned by machine `i` (used by the batching
/// test A5).
fn y(i: usize) -> Loc {
    Loc::new(MachineId(i - 1), 1)
}

/// A litmus test over the extended label alphabet.
#[derive(Debug, Clone)]
pub struct AsyncLitmus {
    /// Short name, e.g. `"test-A1"`.
    pub name: String,
    /// What the test demonstrates.
    pub description: String,
    /// The system configuration the trace runs over.
    pub config: SystemConfig,
    /// The trace of extended labels, in execution order.
    pub trace: Vec<AsyncLabel>,
    /// The expected verdict under the base variant of `CXL0_AF`.
    pub expected: Verdict,
}

impl AsyncLitmus {
    /// Runs the test and returns the observed verdict.
    pub fn run(&self) -> Verdict {
        let sem = AsyncSemantics::with_variant(self.config.clone(), ModelVariant::Base);
        let exp = AsyncExplorer::new(&sem);
        Verdict::from_allowed(exp.is_allowed(&self.trace))
    }

    /// True if the observed verdict matches the expectation.
    pub fn passes(&self) -> bool {
        self.run() == self.expected
    }
}

/// The `A1`–`A8` suite.
pub fn async_flush_tests() -> Vec<AsyncLitmus> {
    let one = SystemConfig::symmetric_nvm(1, 1);
    let two = SystemConfig::symmetric_nvm(2, 1);
    let two_wide = SystemConfig::symmetric_nvm(2, 2);
    vec![
        AsyncLitmus {
            name: "test-A1".into(),
            description: "an un-barriered AFlush request dies with the issuer".into(),
            config: one.clone(),
            trace: vec![
                Label::lstore(M1, x(1), Val(1)).into(),
                AsyncLabel::aflush(M1, x(1)),
                Label::crash(M1).into(),
                Label::load(M1, x(1), Val(0)).into(),
            ],
            expected: Verdict::Allowed,
        },
        AsyncLitmus {
            name: "test-A2".into(),
            description: "AFlush;Barrier persists before the issuer's crash (≙ test 3)".into(),
            config: one,
            trace: vec![
                Label::lstore(M1, x(1), Val(1)).into(),
                AsyncLabel::aflush(M1, x(1)),
                AsyncLabel::barrier(M1),
                Label::crash(M1).into(),
                Label::load(M1, x(1), Val(0)).into(),
            ],
            expected: Verdict::Forbidden,
        },
        AsyncLitmus {
            name: "test-A3".into(),
            description: "AFlush;Barrier reaches remote persistent memory (≙ test 5)".into(),
            config: two.clone(),
            trace: vec![
                Label::lstore(M1, x(2), Val(1)).into(),
                AsyncLabel::aflush(M1, x(2)),
                AsyncLabel::barrier(M1),
                Label::crash(M2).into(),
                Label::load(M1, x(2), Val(0)).into(),
            ],
            expected: Verdict::Forbidden,
        },
        AsyncLitmus {
            name: "test-A4".into(),
            description: "without the barrier the remote store may still be lost (≙ test 4)".into(),
            config: two.clone(),
            trace: vec![
                Label::lstore(M1, x(2), Val(1)).into(),
                AsyncLabel::aflush(M1, x(2)),
                Label::crash(M2).into(),
                Label::load(M1, x(2), Val(0)).into(),
            ],
            expected: Verdict::Allowed,
        },
        AsyncLitmus {
            name: "test-A5".into(),
            description: "batching: one barrier retires both pending flushes".into(),
            config: two_wide,
            trace: vec![
                Label::lstore(M1, x(2), Val(1)).into(),
                Label::lstore(M1, y(2), Val(1)).into(),
                AsyncLabel::aflush(M1, x(2)),
                AsyncLabel::aflush(M1, y(2)),
                AsyncLabel::barrier(M1),
                Label::crash(M2).into(),
                // Losing *either* line is forbidden; losing y is the harder
                // branch (flushed second), so we assert it.
                Label::load(M1, y(2), Val(0)).into(),
            ],
            expected: Verdict::Forbidden,
        },
        AsyncLitmus {
            name: "test-A6".into(),
            description: "a barrier by machine 2 does not retire machine 1's requests".into(),
            config: two.clone(),
            trace: vec![
                Label::lstore(M1, x(2), Val(1)).into(),
                AsyncLabel::aflush(M1, x(2)),
                AsyncLabel::barrier(M2),
                Label::crash(M2).into(),
                Label::load(M1, x(2), Val(0)).into(),
            ],
            expected: Verdict::Allowed,
        },
        AsyncLitmus {
            name: "test-A7".into(),
            description: "a barrier over an empty buffer never blocks".into(),
            config: two.clone(),
            trace: vec![
                AsyncLabel::barrier(M1),
                Label::lstore(M1, x(2), Val(1)).into(),
                AsyncLabel::barrier(M2),
                Label::load(M1, x(2), Val(1)).into(),
            ],
            expected: Verdict::Allowed,
        },
        AsyncLitmus {
            name: "test-A8".into(),
            description: "a crash clears the buffer, so a post-crash barrier proves nothing".into(),
            config: two,
            trace: vec![
                Label::lstore(M2, x(2), Val(1)).into(),
                AsyncLabel::aflush(M2, x(2)),
                Label::crash(M2).into(),
                AsyncLabel::barrier(M2),
                Label::load(M1, x(2), Val(0)).into(),
            ],
            expected: Verdict::Allowed,
        },
    ]
}

/// Checks the `AFlush;Barrier ≡ RFlush` equivalence exhaustively over the
/// reachable states of a small two-machine system, for every issuer and
/// location. Returns the first counterexample state, if any.
pub fn check_aflush_barrier_equivalence() -> Option<String> {
    let cfg = SystemConfig::symmetric_nvm(2, 1);
    let sem = AsyncSemantics::new(cfg.clone());
    let exp = AsyncExplorer::new(&sem);
    let mut alphabet: Vec<AsyncLabel> = Vec::new();
    for m in cfg.machines() {
        for loc in cfg.all_locations() {
            alphabet.push(Label::lstore(m, loc, Val(1)).into());
            alphabet.push(AsyncLabel::aflush(m, loc));
        }
        alphabet.push(Label::crash(m).into());
    }
    let reachable = exp.reachable_states(&alphabet, 4_000);
    for st in &reachable {
        for m in cfg.machines() {
            for loc in cfg.all_locations() {
                let via_async = [AsyncLabel::aflush(m, loc), AsyncLabel::barrier(m)];
                let via_sync = [Label::rflush(m, loc).into()];
                let mut set = std::collections::BTreeSet::new();
                set.insert(st.clone());
                let ok = if st.pending_of(m).is_empty() {
                    exp.same_outcomes(&set, &via_async, &via_sync)
                } else {
                    exp.simulates(&set, &via_async, &via_sync)
                };
                if !ok {
                    return Some(format!(
                        "equivalence fails for issuer {m}, loc {loc}, from state:\n{st}"
                    ));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_async_litmus_tests_pass() {
        for t in async_flush_tests() {
            assert!(
                t.passes(),
                "{} expected {} observed {}",
                t.name,
                t.expected,
                t.run()
            );
        }
    }

    #[test]
    fn suite_has_eight_tests_with_unique_names() {
        let tests = async_flush_tests();
        assert_eq!(tests.len(), 8);
        let mut names: Vec<_> = tests.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn aflush_barrier_equivalence_holds_exhaustively() {
        assert_eq!(check_aflush_barrier_equivalence(), None);
    }

    #[test]
    fn a2_with_barrier_removed_flips_to_allowed() {
        // Sanity: the barrier is what makes A2 forbidden.
        let mut t = async_flush_tests().swap_remove(1);
        assert_eq!(t.name, "test-A2");
        t.trace.retain(|l| !matches!(l, AsyncLabel::Barrier { .. }));
        t.expected = Verdict::Allowed;
        assert!(t.passes());
    }
}
