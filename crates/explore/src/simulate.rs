//! Mechanical checking of Proposition 1: the eight simulation/strength
//! relations between CXL0 primitive sequences that the paper proves in
//! Rocq. We verify them by *exhaustive* checking over every reachable
//! state of small finite configurations (the `⟹` relation — label steps
//! interleaved with `τ*` — is computed by the [`Explorer`]).
//!
//! Each item has the form "if `γ ⟹_{seq_a} γ′` then `γ ⟹_{seq_b} γ′`",
//! i.e. set inclusion `S_γ(seq_a) ⊆ S_γ(seq_b)` for all reachable `γ`.

use std::fmt;

use cxl0_model::{Label, Loc, MachineId, Semantics, State, Trace, Val};

use crate::interp::{Explorer, StateSet};
use crate::space::{explore, AlphabetBuilder};

/// The eight items of Proposition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Prop1Item {
    /// (1) `RStore` is stronger than `LStore`.
    RStoreStrongerThanLStore,
    /// (2) `RStore` and `LStore` by the owner are equivalent.
    OwnerStoresEquivalent,
    /// (3) `MStore` is stronger than `RStore`.
    MStoreStrongerThanRStore,
    /// (4) `RFlush` is stronger than `LFlush`.
    RFlushStrongerThanLFlush,
    /// (5) `LFlush` after `RStore` by a non-owner is redundant.
    LFlushAfterRStoreRedundant,
    /// (6) `RFlush` after `MStore` is redundant.
    RFlushAfterMStoreRedundant,
    /// (7) `RStore` by a non-owner is simulated by `LStore + LFlush`.
    RStoreSimulatedByLStoreLFlush,
    /// (8) `MStore` is simulated by `LStore + RFlush`.
    MStoreSimulatedByLStoreRFlush,
}

impl Prop1Item {
    /// All eight items in paper order.
    pub const ALL: [Prop1Item; 8] = [
        Prop1Item::RStoreStrongerThanLStore,
        Prop1Item::OwnerStoresEquivalent,
        Prop1Item::MStoreStrongerThanRStore,
        Prop1Item::RFlushStrongerThanLFlush,
        Prop1Item::LFlushAfterRStoreRedundant,
        Prop1Item::RFlushAfterMStoreRedundant,
        Prop1Item::RStoreSimulatedByLStoreLFlush,
        Prop1Item::MStoreSimulatedByLStoreRFlush,
    ];

    /// The paper's one-line statement.
    pub fn statement(self) -> &'static str {
        match self {
            Prop1Item::RStoreStrongerThanLStore => {
                "if γ =RStore_i(x,v)⇒ γ' then γ =LStore_i(x,v)⇒ γ'"
            }
            Prop1Item::OwnerStoresEquivalent => {
                "if γ =LStore_k(x,v)⇒ γ' then γ =RStore_k(x,v)⇒ γ'  (k owns x)"
            }
            Prop1Item::MStoreStrongerThanRStore => {
                "if γ =MStore_i(x,v)⇒ γ' then γ =RStore_i(x,v)⇒ γ'"
            }
            Prop1Item::RFlushStrongerThanLFlush => "if γ =RFlush_i(x)⇒ γ' then γ =LFlush_i(x)⇒ γ'",
            Prop1Item::LFlushAfterRStoreRedundant => {
                "if γ =RStore_j(x,v)⇒ γ' then γ =RStore_j(x,v)·LFlush_j(x)⇒ γ'  (j ≠ owner)"
            }
            Prop1Item::RFlushAfterMStoreRedundant => {
                "if γ =MStore_i(x,v)⇒ γ' then γ =MStore_i(x,v)·RFlush_i(x)⇒ γ'"
            }
            Prop1Item::RStoreSimulatedByLStoreLFlush => {
                "if γ =LStore_j(x,v)·LFlush_j(x)⇒ γ' then γ =RStore_j(x,v)⇒ γ'  (j ≠ owner)"
            }
            Prop1Item::MStoreSimulatedByLStoreRFlush => {
                "if γ =LStore_i(x,v)·RFlush_i(x)⇒ γ' then γ =MStore_i(x,v)⇒ γ'"
            }
        }
    }

    /// The `(antecedent, consequent)` label sequences instantiated at
    /// issuer `i`, location `x`, value `v`, or `None` if the side
    /// condition (`j ≠ owner` / `k = owner`) excludes this instantiation.
    pub fn sequences(self, i: MachineId, x: Loc, v: Val) -> Option<(Trace, Trace)> {
        let owner = x.owner;
        fn t(labels: &[Label]) -> Trace {
            Trace::from_labels(labels.iter().copied())
        }
        match self {
            Prop1Item::RStoreStrongerThanLStore => {
                Some((t(&[Label::rstore(i, x, v)]), t(&[Label::lstore(i, x, v)])))
            }
            Prop1Item::OwnerStoresEquivalent => {
                (i == owner).then(|| (t(&[Label::lstore(i, x, v)]), t(&[Label::rstore(i, x, v)])))
            }
            Prop1Item::MStoreStrongerThanRStore => {
                Some((t(&[Label::mstore(i, x, v)]), t(&[Label::rstore(i, x, v)])))
            }
            Prop1Item::RFlushStrongerThanLFlush => {
                Some((t(&[Label::rflush(i, x)]), t(&[Label::lflush(i, x)])))
            }
            Prop1Item::LFlushAfterRStoreRedundant => (i != owner).then(|| {
                (
                    t(&[Label::rstore(i, x, v)]),
                    t(&[Label::rstore(i, x, v), Label::lflush(i, x)]),
                )
            }),
            Prop1Item::RFlushAfterMStoreRedundant => Some((
                t(&[Label::mstore(i, x, v)]),
                t(&[Label::mstore(i, x, v), Label::rflush(i, x)]),
            )),
            Prop1Item::RStoreSimulatedByLStoreLFlush => (i != owner).then(|| {
                (
                    t(&[Label::lstore(i, x, v), Label::lflush(i, x)]),
                    t(&[Label::rstore(i, x, v)]),
                )
            }),
            Prop1Item::MStoreSimulatedByLStoreRFlush => Some((
                t(&[Label::lstore(i, x, v), Label::rflush(i, x)]),
                t(&[Label::mstore(i, x, v)]),
            )),
        }
    }
}

impl fmt::Display for Prop1Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = Prop1Item::ALL.iter().position(|i| i == self).unwrap() + 1;
        write!(f, "Prop1({n}): {}", self.statement())
    }
}

/// A found violation of a Proposition-1 item (should never occur — used
/// for diagnostics if the semantics regresses).
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// The violated item.
    pub item: Prop1Item,
    /// The reachable starting state.
    pub state: State,
    /// The antecedent sequence.
    pub antecedent: Trace,
    /// The consequent sequence.
    pub consequent: Trace,
    /// A state reachable via the antecedent but not the consequent.
    pub witness: State,
}

impl fmt::Display for CounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\nfrom state:\n{}\nvia [{}] reaches:\n{}\nwhich [{}] cannot reach",
            self.item, self.state, self.antecedent, self.witness, self.consequent
        )
    }
}

/// Checks one item of Proposition 1 against every state in `states`, for
/// every (issuer, location) pair and every value in `values`.
///
/// # Errors
///
/// Returns the first counterexample found.
pub fn check_item(
    sem: &Semantics,
    states: &[State],
    values: &[Val],
    item: Prop1Item,
) -> Result<usize, Box<CounterExample>> {
    let exp = Explorer::new(sem);
    let cfg = sem.config();
    let mut checked = 0usize;
    for st in states {
        let mut start = StateSet::new();
        start.insert(st.clone());
        for i in cfg.machines() {
            for x in cfg.all_locations() {
                for &v in values {
                    let Some((ante, cons)) = item.sequences(i, x, v) else {
                        continue;
                    };
                    let sa = exp.after_trace(&start, &ante);
                    let sb = exp.after_trace(&start, &cons);
                    if let Some(witness) = sa.iter().find(|s| !sb.contains(*s)) {
                        return Err(Box::new(CounterExample {
                            item,
                            state: st.clone(),
                            antecedent: ante,
                            consequent: cons,
                            witness: witness.clone(),
                        }));
                    }
                    checked += 1;
                }
            }
        }
    }
    Ok(checked)
}

/// Checks all eight items over the full reachable state space of `sem`
/// (driven by a default full alphabet over `values`).
///
/// Returns, per item, the number of `(state, issuer, location, value)`
/// instantiations checked.
///
/// # Errors
///
/// Returns the first counterexample found.
pub fn check_all(
    sem: &Semantics,
    values: &[Val],
    max_states: usize,
) -> Result<Vec<(Prop1Item, usize)>, Box<CounterExample>> {
    let alphabet = AlphabetBuilder::new(sem.config())
        .values(values.iter().copied())
        .build();
    let graph = explore(sem, &alphabet, max_states);
    let mut out = Vec::new();
    for item in Prop1Item::ALL {
        let n = check_item(sem, &graph.states, values, item)?;
        out.push((item, n));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl0_model::SystemConfig;

    #[test]
    fn all_items_hold_on_two_machine_nvm() {
        let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
        let results = check_all(&sem, &[Val(0), Val(1)], 100_000).unwrap();
        assert_eq!(results.len(), 8);
        for (item, n) in results {
            assert!(n > 0, "{item} checked zero instantiations");
        }
    }

    #[test]
    fn all_items_hold_with_volatile_memory() {
        use cxl0_model::MachineConfig;
        let cfg = SystemConfig::new(vec![
            MachineConfig::non_volatile(1),
            MachineConfig::volatile(1),
        ]);
        let sem = Semantics::new(cfg);
        check_all(&sem, &[Val(0), Val(1)], 100_000).unwrap();
    }

    #[test]
    fn side_conditions_skip_instantiations() {
        let x = Loc::new(MachineId(0), 0);
        // Item 7 requires j ≠ owner.
        assert!(Prop1Item::RStoreSimulatedByLStoreLFlush
            .sequences(MachineId(0), x, Val(1))
            .is_none());
        assert!(Prop1Item::RStoreSimulatedByLStoreLFlush
            .sequences(MachineId(1), x, Val(1))
            .is_some());
        // Item 2 requires k = owner.
        assert!(Prop1Item::OwnerStoresEquivalent
            .sequences(MachineId(1), x, Val(1))
            .is_none());
    }

    #[test]
    fn statements_mention_their_primitives() {
        assert!(Prop1Item::MStoreSimulatedByLStoreRFlush
            .statement()
            .contains("RFlush"));
        assert!(Prop1Item::RStoreStrongerThanLStore
            .to_string()
            .starts_with("Prop1(1)"));
    }

    #[test]
    fn a_false_claim_is_caught() {
        // Sanity-check the checker itself: "LStore is stronger than
        // MStore" is false; swap antecedent/consequent of item 8 by
        // checking MStore ⊆ LStore·RFlush... that one is TRUE (item 8 is
        // an equivalence in effect). Instead check LStore ⊆ MStore which
        // must fail: an LStore outcome where the value is only in the
        // issuer's cache is not an MStore outcome.
        let sem = Semantics::new(SystemConfig::symmetric_nvm(2, 1));
        let exp = Explorer::new(&sem);
        let set = exp.initial_set();
        let x = Loc::new(MachineId(1), 0);
        let ls = Trace::from_labels([Label::lstore(MachineId(0), x, Val(1))]);
        let ms = Trace::from_labels([Label::mstore(MachineId(0), x, Val(1))]);
        assert!(!exp.simulates(&set, &ls, &ms));
        // While the converse (item 3 + 1 composed) holds:
        assert!(exp.simulates(&set, &ms, &ls));
    }
}
