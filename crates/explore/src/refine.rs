//! Bounded trace-refinement checking between model variants — our
//! replacement for the paper's FDR4/CSP analysis (§3.5).
//!
//! `impl ⊑ spec` (trace refinement) holds iff every visible trace of
//! `impl` is a trace of `spec`. Because CXL0's visible labels are
//! deterministic per state (loads carry their observed value), the
//! determinized view of each model is a subset construction over τ-closed
//! state sets; we explore the *product* of the two determinizations and
//! report the first trace executable in `impl` but not in `spec`.
//!
//! The paper's claims, which the tests below and `tests/refinement.rs`
//! verify mechanically:
//!
//! * `CXL0_PSN ⊑ CXL0` and `CXL0_LWB ⊑ CXL0` (every variant trace is a
//!   base trace);
//! * `CXL0 ⋢ CXL0_PSN` and `CXL0 ⋢ CXL0_LWB` (with tests 10–12 as
//!   distinguishing traces);
//! * `CXL0_PSN` and `CXL0_LWB` are incomparable.

use std::collections::HashSet;

use cxl0_model::{Label, Semantics, Trace};

use crate::interp::{Explorer, StateSet};

/// The outcome of a bounded refinement check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refinement {
    /// Every `impl` trace of length ≤ depth is a `spec` trace.
    HoldsUpToDepth(usize),
    /// A trace executable in `impl` but not in `spec`.
    CounterExample(Trace),
}

impl Refinement {
    /// True if no counterexample was found within the bound.
    pub fn holds(&self) -> bool {
        matches!(self, Refinement::HoldsUpToDepth(_))
    }

    /// The distinguishing trace, if any.
    pub fn counterexample(&self) -> Option<&Trace> {
        match self {
            Refinement::CounterExample(t) => Some(t),
            Refinement::HoldsUpToDepth(_) => None,
        }
    }
}

/// Checks `impl_sem ⊑ spec_sem` for traces up to `depth` labels drawn from
/// `alphabet`, by product subset construction with memoization.
///
/// Both semantics must share the configuration (same machines/locations);
/// this is the caller's responsibility — the usual use is two variants
/// over one `SystemConfig`.
pub fn check_refinement(
    impl_sem: &Semantics,
    spec_sem: &Semantics,
    alphabet: &[Label],
    depth: usize,
) -> Refinement {
    let impl_exp = Explorer::new(impl_sem);
    let spec_exp = Explorer::new(spec_sem);

    let start = (impl_exp.initial_set(), spec_exp.initial_set());
    let mut visited: HashSet<(StateSet, StateSet)> = HashSet::new();
    visited.insert(start.clone());
    let mut frontier: Vec<(Trace, StateSet, StateSet)> = vec![(Trace::new(), start.0, start.1)];

    for _ in 0..depth {
        let mut next_frontier = Vec::new();
        for (trace, si, ss) in &frontier {
            for label in alphabet {
                let ni = impl_exp.after_label(si, label);
                if ni.is_empty() {
                    continue; // not an impl trace; nothing to check
                }
                let ns = spec_exp.after_label(ss, label);
                if ns.is_empty() {
                    return Refinement::CounterExample(trace.clone().then(*label));
                }
                if visited.insert((ni.clone(), ns.clone())) {
                    next_frontier.push((trace.clone().then(*label), ni, ns));
                }
            }
        }
        if next_frontier.is_empty() {
            // Fixpoint reached: refinement holds for *all* depths.
            return Refinement::HoldsUpToDepth(usize::MAX);
        }
        frontier = next_frontier;
    }
    Refinement::HoldsUpToDepth(depth)
}

/// Finds a trace executable in `a` but not in `b` *and* a trace
/// executable in `b` but not in `a`, demonstrating that the two models
/// are incomparable; `None` in a component if no such trace exists within
/// the bound.
pub fn incomparability_witnesses(
    a: &Semantics,
    b: &Semantics,
    alphabet: &[Label],
    depth: usize,
) -> (Option<Trace>, Option<Trace>) {
    let a_not_b = match check_refinement(a, b, alphabet, depth) {
        Refinement::CounterExample(t) => Some(t),
        Refinement::HoldsUpToDepth(_) => None,
    };
    let b_not_a = match check_refinement(b, a, alphabet, depth) {
        Refinement::CounterExample(t) => Some(t),
        Refinement::HoldsUpToDepth(_) => None,
    };
    (a_not_b, b_not_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AlphabetBuilder;
    use cxl0_model::{MachineConfig, ModelVariant, Primitive, SystemConfig, Val};

    /// Machine 0: NVMM; machine 1: volatile — the §3.5 configuration.
    fn cfg() -> SystemConfig {
        SystemConfig::new(vec![
            MachineConfig::non_volatile(1),
            MachineConfig::volatile(1),
        ])
    }

    fn small_alphabet(cfg: &SystemConfig) -> Vec<Label> {
        AlphabetBuilder::new(cfg)
            .values([Val(0), Val(1)])
            .primitives([
                Primitive::LStore,
                Primitive::RStore,
                Primitive::Load,
                Primitive::Crash,
            ])
            .build()
    }

    #[test]
    fn variants_refine_base() {
        let cfg = cfg();
        let alphabet = small_alphabet(&cfg);
        let base = Semantics::new(cfg.clone());
        for v in [ModelVariant::Psn, ModelVariant::Lwb] {
            let var = Semantics::with_variant(cfg.clone(), v);
            let r = check_refinement(&var, &base, &alphabet, 5);
            assert!(r.holds(), "{v} ⋢ CXL0: {:?}", r.counterexample());
        }
    }

    #[test]
    fn base_does_not_refine_variants() {
        let cfg = cfg();
        let alphabet = small_alphabet(&cfg);
        let base = Semantics::new(cfg.clone());
        for v in [ModelVariant::Psn, ModelVariant::Lwb] {
            let var = Semantics::with_variant(cfg.clone(), v);
            let r = check_refinement(&base, &var, &alphabet, 5);
            assert!(!r.holds(), "CXL0 unexpectedly refines {v}");
        }
    }

    #[test]
    fn psn_and_lwb_are_incomparable() {
        let cfg = cfg();
        let alphabet = small_alphabet(&cfg);
        let psn = Semantics::with_variant(cfg.clone(), ModelVariant::Psn);
        let lwb = Semantics::with_variant(cfg.clone(), ModelVariant::Lwb);
        let (p_not_l, l_not_p) = incomparability_witnesses(&psn, &lwb, &alphabet, 5);
        assert!(p_not_l.is_some(), "expected a PSN trace that LWB forbids");
        assert!(l_not_p.is_some(), "expected an LWB trace that PSN forbids");
    }

    #[test]
    fn model_refines_itself_to_fixpoint() {
        let cfg = cfg();
        let alphabet = small_alphabet(&cfg);
        let base = Semantics::new(cfg);
        let r = check_refinement(&base, &base, &alphabet, 50);
        // Self-refinement must reach the fixpoint, proving all depths.
        assert_eq!(r, Refinement::HoldsUpToDepth(usize::MAX));
    }
}
