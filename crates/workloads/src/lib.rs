//! # `cxl0-workloads` — deterministic workload generation
//!
//! Key distributions and operation mixes for the §6 performance
//! experiments (E8 in DESIGN.md): uniform and zipfian key streams, and
//! configurable read/insert/remove mixes, all seeded for reproducibility.
//!
//! ```
//! use cxl0_workloads::{KeyDist, OpMix, Workload, WorkloadOp};
//!
//! let mut w = Workload::new(KeyDist::zipfian(1000, 0.99), OpMix::read_heavy(), 42);
//! let ops: Vec<WorkloadOp> = (0..100).map(|_| w.next_op()).collect();
//! assert_eq!(ops.len(), 100);
//! assert!(ops.iter().all(|op| op.key() >= 1 && op.key() <= 1000));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A key distribution over `1..=n` (keys are non-zero, matching the
/// durable map's contract).
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `1..=n`.
    Uniform {
        /// Number of distinct keys.
        n: u64,
    },
    /// Zipfian over `1..=n` with exponent `theta`, via a precomputed CDF
    /// table (exact inverse-CDF sampling; `n` is expected to be ≤ ~10⁶).
    Zipfian {
        /// Number of distinct keys.
        n: u64,
        /// The skew exponent (0 = uniform, 0.99 = YCSB default).
        theta: f64,
        /// Cumulative probabilities, `cdf[i] = P(key ≤ i+1)`.
        cdf: Vec<f64>,
    },
}

impl KeyDist {
    /// Uniform over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform(n: u64) -> Self {
        assert!(n > 0, "need at least one key");
        KeyDist::Uniform { n }
    }

    /// Zipfian over `1..=n` with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn zipfian(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one key");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        KeyDist::Zipfian { n, theta, cdf }
    }

    /// The number of distinct keys.
    pub fn num_keys(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } | KeyDist::Zipfian { n, .. } => *n,
        }
    }

    /// Samples one key in `1..=n`.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(1..=*n),
            KeyDist::Zipfian { cdf, .. } => {
                let u: f64 = rng.gen();
                // Binary search the CDF for the first entry ≥ u.
                let idx = cdf.partition_point(|&c| c < u);
                (idx as u64 + 1).min(cdf.len() as u64)
            }
        }
    }
}

/// Percentages of each operation type (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent of lookups.
    pub read_pct: u8,
    /// Percent of inserts/updates.
    pub insert_pct: u8,
    /// Percent of removals.
    pub remove_pct: u8,
}

impl OpMix {
    /// Builds a mix.
    ///
    /// # Panics
    ///
    /// Panics unless the percentages sum to 100.
    pub fn new(read_pct: u8, insert_pct: u8, remove_pct: u8) -> Self {
        assert_eq!(
            read_pct as u32 + insert_pct as u32 + remove_pct as u32,
            100,
            "mix must sum to 100"
        );
        OpMix {
            read_pct,
            insert_pct,
            remove_pct,
        }
    }

    /// YCSB-B-like: 95% reads, 5% inserts.
    pub fn read_heavy() -> Self {
        OpMix::new(95, 5, 0)
    }

    /// YCSB-A-like: 50% reads, 50% inserts.
    pub fn update_heavy() -> Self {
        OpMix::new(50, 50, 0)
    }

    /// Insert/remove churn: 34% reads, 33% inserts, 33% removes.
    pub fn churn() -> Self {
        OpMix::new(34, 33, 33)
    }

    /// Allocation churn: a balanced 50/50 insert/remove mix with no
    /// reads — every operation allocates or reclaims a node, the
    /// worst case for the memory allocator (used by the `--churn`
    /// perf sweep and `examples/alloc_churn.rs`).
    pub fn alloc_churn() -> Self {
        OpMix::new(0, 50, 50)
    }

    /// Write-only.
    pub fn write_only() -> Self {
        OpMix::new(0, 100, 0)
    }
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Look up a key.
    Read(u64),
    /// Insert/update a key with a value.
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
}

impl WorkloadOp {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            WorkloadOp::Read(k) | WorkloadOp::Insert(k, _) | WorkloadOp::Remove(k) => k,
        }
    }
}

/// A seeded operation stream.
#[derive(Debug, Clone)]
pub struct Workload {
    dist: KeyDist,
    mix: OpMix,
    rng: StdRng,
    next_value: u64,
}

impl Workload {
    /// Creates a stream with the given distribution, mix and seed.
    pub fn new(dist: KeyDist, mix: OpMix, seed: u64) -> Self {
        Workload {
            dist,
            mix,
            rng: StdRng::seed_from_u64(seed),
            next_value: 1,
        }
    }

    /// The key distribution.
    pub fn dist(&self) -> &KeyDist {
        &self.dist
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> WorkloadOp {
        let key = self.dist.sample(&mut self.rng);
        let roll = self.rng.gen_range(0..100u8);
        if roll < self.mix.read_pct {
            WorkloadOp::Read(key)
        } else if roll < self.mix.read_pct + self.mix.insert_pct {
            self.next_value += 1;
            WorkloadOp::Insert(key, self.next_value)
        } else {
            WorkloadOp::Remove(key)
        }
    }

    /// Generates a batch of `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<WorkloadOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_covers_the_range() {
        let d = KeyDist::uniform(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let k = d.sample(&mut rng);
            assert!((1..=10).contains(&k));
            seen.insert(k);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn zipfian_is_skewed_toward_small_keys() {
        let d = KeyDist::zipfian(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(d.sample(&mut rng)).or_default() += 1;
        }
        let head: usize = (1..=10).map(|k| counts.get(&k).copied().unwrap_or(0)).sum();
        // With theta=0.99 and n=1000, the top-10 keys draw ≈ 39% of mass.
        assert!(
            head as f64 / 20_000.0 > 0.25,
            "zipfian head too light: {head}"
        );
    }

    #[test]
    fn zipfian_theta_zero_is_uniformish() {
        let d = KeyDist::zipfian(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[(d.sample(&mut rng) - 1) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn mix_percentages_respected() {
        let mut w = Workload::new(KeyDist::uniform(100), OpMix::new(70, 20, 10), 4);
        let ops = w.take_ops(10_000);
        let reads = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Read(_)))
            .count();
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Insert(..)))
            .count();
        let removes = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Remove(_)))
            .count();
        assert!((6_500..7_500).contains(&reads), "{reads}");
        assert!((1_500..2_500).contains(&inserts), "{inserts}");
        assert!((500..1_500).contains(&removes), "{removes}");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Workload::new(KeyDist::zipfian(50, 0.8), OpMix::churn(), 9);
        let mut b = Workload::new(KeyDist::zipfian(50, 0.8), OpMix::churn(), 9);
        assert_eq!(a.take_ops(500), b.take_ops(500));
    }

    #[test]
    fn keys_are_nonzero() {
        let mut w = Workload::new(KeyDist::zipfian(10, 1.2), OpMix::update_heavy(), 5);
        for op in w.take_ops(1000) {
            assert!(op.key() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_rejected() {
        let _ = OpMix::new(50, 50, 50);
    }

    #[test]
    fn alloc_churn_is_balanced_and_readless() {
        let mix = OpMix::alloc_churn();
        assert_eq!(mix.read_pct, 0);
        assert_eq!(mix.insert_pct, mix.remove_pct);
        let mut w = Workload::new(KeyDist::uniform(64), mix, 21);
        let ops = w.take_ops(4_000);
        assert!(ops.iter().all(|o| !matches!(o, WorkloadOp::Read(_))));
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Insert(..)))
            .count();
        assert!((1_700..2_300).contains(&inserts), "{inserts}");
    }
}
