//! Linearizability checking à la Wing & Gong, with the memoization
//! improvement of Lowe: a depth-first search over (linearized-set,
//! spec-state) pairs.
//!
//! The checker handles *pending* invocations per the original definition:
//! a pending operation may take effect at any point after its invocation
//! (with an arbitrary response), or may be omitted entirely.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

use crate::bitset::BitSet;
use crate::history::{Event, History, OpId};
use crate::spec::SeqSpec;

/// One operation extracted from a history.
#[derive(Debug, Clone)]
pub struct OpRecord<Op, Ret> {
    /// The op id from the history.
    pub id: OpId,
    /// The operation.
    pub op: Op,
    /// Index of the invocation event.
    pub invoked_at: usize,
    /// Index of the response event and the returned value, if completed.
    pub response: Option<(usize, Ret)>,
}

/// Result of a linearizability check.
#[derive(Debug, Clone)]
pub enum LinResult<Op> {
    /// A witness linearization (op order) exists.
    Linearizable {
        /// The ops in linearization order (omitted pending ops excluded).
        witness: Vec<(OpId, Op)>,
    },
    /// No linearization exists.
    NotLinearizable,
}

impl<Op> LinResult<Op> {
    /// True for [`LinResult::Linearizable`].
    pub fn is_linearizable(&self) -> bool {
        matches!(self, LinResult::Linearizable { .. })
    }
}

impl<Op: fmt::Debug> fmt::Display for LinResult<Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinResult::Linearizable { witness } => {
                write!(f, "linearizable via {} ops", witness.len())
            }
            LinResult::NotLinearizable => write!(f, "NOT linearizable"),
        }
    }
}

/// Extracts the operations of a history in invocation order.
pub fn collect_ops<Op: Clone + fmt::Debug, Ret: Clone + fmt::Debug>(
    history: &History<Op, Ret>,
) -> Vec<OpRecord<Op, Ret>> {
    let mut ops: Vec<OpRecord<Op, Ret>> = Vec::new();
    let mut index_of: std::collections::HashMap<OpId, usize> = Default::default();
    for (i, ev) in history.events().iter().enumerate() {
        match ev {
            Event::Invoke { id, op, .. } => {
                index_of.insert(*id, ops.len());
                ops.push(OpRecord {
                    id: *id,
                    op: op.clone(),
                    invoked_at: i,
                    response: None,
                });
            }
            Event::Respond { id, ret } => {
                let k = index_of[id];
                ops[k].response = Some((i, ret.clone()));
            }
            Event::Crash { .. } => {}
        }
    }
    ops
}

/// Checks whether `history` (crash-free; see [`crate::durable`] for the
/// crash-aware entry point) is linearizable with respect to `spec`.
///
/// Histories with more than a few hundred concurrent ops may be slow; the
/// search is exponential in the worst case but the memoization keeps
/// realistic histories (bounded concurrency) fast.
pub fn check_linearizable<S: SeqSpec>(
    spec: &S,
    history: &History<S::Op, S::Ret>,
) -> LinResult<S::Op>
where
    S::Op: Clone + fmt::Debug,
    S::Ret: Clone + fmt::Debug + PartialEq,
    S::State: Clone + Hash + Eq,
{
    let ops = collect_ops(history);
    let n = ops.len();

    // Happens-before predecessors: for op o, the set of *completed* ops
    // whose response precedes o's invocation. These must be linearized
    // before o.
    let mut preds: Vec<BitSet> = Vec::with_capacity(n);
    for o in &ops {
        let mut p = BitSet::new(n);
        for (j, q) in ops.iter().enumerate() {
            if let Some((resp_idx, _)) = &q.response {
                if *resp_idx < o.invoked_at {
                    p.set(j);
                }
            }
        }
        preds.push(p);
    }

    let mut completed = BitSet::new(n);
    for (j, o) in ops.iter().enumerate() {
        if o.response.is_some() {
            completed.set(j);
        }
    }

    // Iterative DFS with an explicit stack of (mask, state, chosen-op path).
    let mut visited: HashSet<(BitSet, S::State)> = HashSet::new();
    let init = spec.initial();
    let mut stack: Vec<(BitSet, S::State, Vec<usize>)> =
        vec![(BitSet::new(n), init.clone(), Vec::new())];
    visited.insert((BitSet::new(n), init));

    while let Some((mask, state, path)) = stack.pop() {
        if mask.contains_all(&completed) {
            let witness = path
                .into_iter()
                .map(|j| (ops[j].id, ops[j].op.clone()))
                .collect();
            return LinResult::Linearizable { witness };
        }
        for j in 0..n {
            if mask.get(j) || !mask.contains_all(&preds[j]) {
                continue;
            }
            let (next_state, ret) = spec.apply(&state, &ops[j].op);
            if let Some((_, actual)) = &ops[j].response {
                if *actual != ret {
                    continue; // return value contradicts the spec here
                }
            }
            let mut next_mask = mask.clone();
            next_mask.set(j);
            let key = (next_mask.clone(), next_state.clone());
            if visited.insert(key) {
                let mut next_path = path.clone();
                next_path.push(j);
                stack.push((next_mask, next_state, next_path));
            }
        }
        // Pending ops may also be *omitted*: omission needs no transition —
        // it is modeled by simply never linearizing them, which the goal
        // check (`mask ⊇ completed`) already permits.
    }
    LinResult::NotLinearizable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Recorder, ThreadId};
    use crate::spec::{QueueOp, QueueRet, QueueSpec, RegisterOp, RegisterRet, RegisterSpec};

    #[test]
    fn sequential_queue_history_linearizable() {
        let rec = Recorder::new();
        let a = rec.invoke(ThreadId(0), 0, QueueOp::Enq(1));
        rec.respond(a, QueueRet::Ok);
        let b = rec.invoke(ThreadId(0), 0, QueueOp::Deq);
        rec.respond(b, QueueRet::Deqd(Some(1)));
        let h = rec.finish();
        assert!(check_linearizable(&QueueSpec, &h).is_linearizable());
    }

    #[test]
    fn fifo_violation_detected() {
        let rec = Recorder::new();
        let a = rec.invoke(ThreadId(0), 0, QueueOp::Enq(1));
        rec.respond(a, QueueRet::Ok);
        let b = rec.invoke(ThreadId(0), 0, QueueOp::Enq(2));
        rec.respond(b, QueueRet::Ok);
        let c = rec.invoke(ThreadId(0), 0, QueueOp::Deq);
        rec.respond(c, QueueRet::Deqd(Some(2))); // wrong: must be 1
        let h = rec.finish();
        assert!(!check_linearizable(&QueueSpec, &h).is_linearizable());
    }

    #[test]
    fn concurrent_overlap_allows_reordering() {
        // Two overlapping enqueues by different threads; a dequeue sees
        // the one invoked second — fine, they overlap.
        let rec = Recorder::new();
        let a = rec.invoke(ThreadId(0), 0, QueueOp::Enq(1));
        let b = rec.invoke(ThreadId(1), 0, QueueOp::Enq(2));
        rec.respond(a, QueueRet::Ok);
        rec.respond(b, QueueRet::Ok);
        let c = rec.invoke(ThreadId(0), 0, QueueOp::Deq);
        rec.respond(c, QueueRet::Deqd(Some(2)));
        let h = rec.finish();
        assert!(check_linearizable(&QueueSpec, &h).is_linearizable());
    }

    #[test]
    fn real_time_order_is_respected() {
        // Non-overlapping enqueues cannot be reordered.
        let rec = Recorder::new();
        let a = rec.invoke(ThreadId(0), 0, QueueOp::Enq(1));
        rec.respond(a, QueueRet::Ok);
        let b = rec.invoke(ThreadId(1), 0, QueueOp::Enq(2));
        rec.respond(b, QueueRet::Ok);
        let c = rec.invoke(ThreadId(0), 0, QueueOp::Deq);
        rec.respond(c, QueueRet::Deqd(Some(2)));
        let h = rec.finish();
        assert!(!check_linearizable(&QueueSpec, &h).is_linearizable());
    }

    #[test]
    fn pending_op_may_take_effect() {
        // A write is invoked but never responds (e.g. crash); a read still
        // sees its value — allowed, the pending op linearized.
        let rec = Recorder::new();
        let _w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(7));
        let h = rec.finish();
        assert!(check_linearizable(&RegisterSpec, &h).is_linearizable());
    }

    #[test]
    fn pending_op_may_be_omitted() {
        let rec = Recorder::new();
        let _w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(0));
        let h = rec.finish();
        assert!(check_linearizable(&RegisterSpec, &h).is_linearizable());
    }

    #[test]
    fn value_from_nowhere_rejected() {
        let rec = Recorder::new();
        let r = rec.invoke(ThreadId(0), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(9));
        let h = rec.finish();
        assert!(!check_linearizable(&RegisterSpec, &h).is_linearizable());
    }

    #[test]
    fn witness_is_a_valid_linearization() {
        let rec = Recorder::new();
        let a = rec.invoke(ThreadId(0), 0, QueueOp::Enq(5));
        rec.respond(a, QueueRet::Ok);
        let b = rec.invoke(ThreadId(0), 0, QueueOp::Deq);
        rec.respond(b, QueueRet::Deqd(Some(5)));
        let h = rec.finish();
        match check_linearizable(&QueueSpec, &h) {
            LinResult::Linearizable { witness } => {
                assert_eq!(witness.len(), 2);
                assert!(matches!(witness[0].1, QueueOp::Enq(5)));
            }
            LinResult::NotLinearizable => panic!("expected linearizable"),
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<QueueOp, QueueRet> = History::new();
        assert!(check_linearizable(&QueueSpec, &h).is_linearizable());
    }
}
