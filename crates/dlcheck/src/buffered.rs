//! *Buffered* durable linearizability — the relaxed durability criterion
//! of Izraelevitz et al. that the paper's §8 points to as a performance
//! opportunity ("relaxing durability semantics has generally been shown to
//! be beneficial for performance").
//!
//! Under **strict** durable linearizability every completed operation must
//! survive a crash. Under the **buffered** variant a crash may roll the
//! object back to an earlier consistent state: a *suffix* of the completed
//! operations may be lost, as long as what survives is a consistent cut —
//! exactly the guarantee an epoch/sync-based implementation (Montage-style,
//! `cxl0-runtime`'s `BufferedEpoch`) provides, where only operations before
//! the last explicit `sync` are guaranteed.
//!
//! ## What exactly is checked
//!
//! The history is split into *eras* at crash events. For each pre-crash era
//! the checker searches for a **cut**: a position in the era's event
//! sequence such that
//!
//! 1. **pre-crash worlds are live-linearizable** — for every era `j`, the
//!    surviving prefixes of eras `0..j` followed by the *complete* era `j`
//!    must be linearizable (clients got real answers before the crash, even
//!    for operations whose effects were later dropped);
//! 2. **the recovery world is linearizable** — the surviving prefixes of
//!    all pre-crash eras followed by the final era must be linearizable,
//!    where "surviving prefix" removes every operation invoked at or after
//!    the cut and demotes operations spanning the cut to pending
//!    (complete-or-omit, mirroring an effect that may or may not have
//!    reached persistence).
//!
//! The cut is a *real-time* frontier, which is the guarantee sync/epoch
//! implementations actually give (everything before the last `sync`
//! persists, everything after may vanish wholesale). A hypothetical
//! implementation that drops a non-real-time suffix of the linearization
//! order would be rejected here even though the abstract definition of
//! buffered durable linearizability permits it — the checker is
//! conservative in that direction. In the other direction it follows the
//! paper's partial-crash model: an operation left pending by a cut may
//! still take effect *after* the crash, because its store can survive in a
//! non-crashed machine's cache and propagate later (the paper's litmus
//! test 8).
//!
//! Cuts are searched latest-first, so the reported witness drops as few
//! operations as possible; in particular a strictly durably linearizable
//! history is reported with zero drops.

use std::fmt;
use std::hash::Hash;

use crate::history::{Event, History, OpId};
use crate::lin::{check_linearizable, LinResult};
use crate::spec::SeqSpec;

/// Result of a buffered-durable-linearizability check.
#[derive(Debug, Clone)]
pub enum BufferedResult<Op> {
    /// The history satisfies buffered durable linearizability.
    BufferedDurablyLinearizable {
        /// The chosen cut position (event index within the era) for each
        /// pre-crash era. A cut equal to the era length drops nothing.
        cuts: Vec<usize>,
        /// Completed operations whose effects were dropped by the cuts.
        dropped: usize,
        /// Witness linearization of the recovery world.
        witness: Vec<(OpId, Op)>,
    },
    /// The history is not well formed.
    IllFormed(String),
    /// No cut assignment yields consistent worlds.
    NotBufferedLinearizable,
    /// The search budget was exhausted before a verdict (only possible
    /// with many crashes and long eras).
    BudgetExhausted,
}

impl<Op> BufferedResult<Op> {
    /// True iff the history passed.
    pub fn is_ok(&self) -> bool {
        matches!(self, BufferedResult::BufferedDurablyLinearizable { .. })
    }

    /// Number of dropped completed operations, if the check passed.
    pub fn dropped(&self) -> Option<usize> {
        match self {
            BufferedResult::BufferedDurablyLinearizable { dropped, .. } => Some(*dropped),
            _ => None,
        }
    }
}

impl<Op: fmt::Debug> fmt::Display for BufferedResult<Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferedResult::BufferedDurablyLinearizable {
                cuts,
                dropped,
                witness,
            } => write!(
                f,
                "buffered durably linearizable ({} ops take effect, {dropped} completed ops \
                 dropped, cuts {cuts:?})",
                witness.len()
            ),
            BufferedResult::IllFormed(why) => write!(f, "ill-formed history: {why}"),
            BufferedResult::NotBufferedLinearizable => {
                write!(f, "NOT buffered durably linearizable")
            }
            BufferedResult::BudgetExhausted => write!(f, "cut-search budget exhausted"),
        }
    }
}

/// Splits a history's events into eras at crash events. Crash events
/// themselves are not part of any era.
fn split_eras<Op: Clone + fmt::Debug, Ret: Clone + fmt::Debug>(
    history: &History<Op, Ret>,
) -> Vec<Vec<Event<Op, Ret>>> {
    let mut eras = vec![Vec::new()];
    for ev in history.events() {
        match ev {
            Event::Crash { .. } => eras.push(Vec::new()),
            other => eras.last_mut().expect("never empty").push(other.clone()),
        }
    }
    eras
}

/// The surviving prefix of an era under `cut`: events at index `>= cut`
/// are removed; an invocation kept whose response is removed leaves the
/// operation pending (complete-or-omit).
fn truncate<Op: Clone, Ret: Clone>(era: &[Event<Op, Ret>], cut: usize) -> Vec<Event<Op, Ret>> {
    era.iter().take(cut).cloned().collect()
}

/// Positions worth cutting at: era boundaries and positions just before
/// each response event (cutting elsewhere is equivalent to one of these,
/// because only which responses/invocations survive matters).
fn candidate_cuts<Op, Ret>(era: &[Event<Op, Ret>]) -> Vec<usize> {
    let mut cuts = vec![era.len()];
    for (i, ev) in era.iter().enumerate().rev() {
        if matches!(ev, Event::Respond { .. } | Event::Invoke { .. }) {
            cuts.push(i);
        }
    }
    cuts.dedup();
    cuts
}

/// Checks buffered durable linearizability of `history` against `spec`,
/// with a default search budget of 100 000 linearizability sub-checks.
pub fn check_buffered_durably_linearizable<S: SeqSpec>(
    spec: &S,
    history: &History<S::Op, S::Ret>,
) -> BufferedResult<S::Op>
where
    S::Op: Clone + fmt::Debug,
    S::Ret: Clone + fmt::Debug + PartialEq,
    S::State: Clone + Hash + Eq,
{
    check_buffered_with_budget(spec, history, 100_000)
}

/// [`check_buffered_durably_linearizable`] with an explicit budget on the
/// number of linearizability sub-checks.
pub fn check_buffered_with_budget<S: SeqSpec>(
    spec: &S,
    history: &History<S::Op, S::Ret>,
    budget: usize,
) -> BufferedResult<S::Op>
where
    S::Op: Clone + fmt::Debug,
    S::Ret: Clone + fmt::Debug + PartialEq,
    S::State: Clone + Hash + Eq,
{
    if let Err(why) = history.validate() {
        return BufferedResult::IllFormed(why);
    }
    let eras = split_eras(history);
    let k = eras.len() - 1; // number of crashes / pre-crash eras

    // Pre-crash world 0 (the live run before the first crash) does not
    // depend on any cut; check it once.
    let mut checks = 0usize;
    let mut lin_of = |events: Vec<Event<S::Op, S::Ret>>| -> Option<LinResult<S::Op>> {
        checks += 1;
        if checks > budget {
            return None;
        }
        Some(check_linearizable(
            spec,
            &History::from_events_unchecked(events),
        ))
    };

    if k == 0 {
        // No crashes: buffered DL degenerates to plain linearizability.
        return match lin_of(eras[0].clone()) {
            None => BufferedResult::BudgetExhausted,
            Some(LinResult::Linearizable { witness }) => {
                BufferedResult::BufferedDurablyLinearizable {
                    cuts: Vec::new(),
                    dropped: 0,
                    witness,
                }
            }
            Some(LinResult::NotLinearizable) => BufferedResult::NotBufferedLinearizable,
        };
    }

    // Depth-first search over cut vectors, latest cuts first. At depth j we
    // have chosen cuts for eras 0..j and verified the pre-crash world of
    // era j under those cuts.
    struct Frame {
        era: usize,
        cuts: Vec<usize>,
        prefix: Vec<usize>, // remaining candidate cuts for this era
    }

    // Verify pre-crash world j under `chosen` cuts for eras 0..j.
    // Returns None on budget exhaustion.
    fn world<S: SeqSpec>(
        eras: &[Vec<Event<S::Op, S::Ret>>],
        chosen: &[usize],
        j: usize,
    ) -> Vec<Event<S::Op, S::Ret>>
    where
        S::Op: Clone,
        S::Ret: Clone,
    {
        let mut events = Vec::new();
        for (i, &cut) in chosen.iter().enumerate().take(j) {
            events.extend(truncate(&eras[i], cut));
        }
        events.extend(eras[j].iter().cloned());
        events
    }

    // The live world of era 0 must hold regardless of cuts.
    match lin_of(eras[0].clone()) {
        None => return BufferedResult::BudgetExhausted,
        Some(LinResult::NotLinearizable) => return BufferedResult::NotBufferedLinearizable,
        Some(LinResult::Linearizable { .. }) => {}
    }

    let mut stack = vec![Frame {
        era: 0,
        cuts: Vec::new(),
        prefix: candidate_cuts(&eras[0]),
    }];

    while let Some(frame) = stack.last_mut() {
        let Some(cut) = frame.prefix.first().copied() else {
            stack.pop();
            continue;
        };
        frame.prefix.remove(0);
        let mut cuts = frame.cuts.clone();
        let era = frame.era;
        cuts.push(cut);

        if era + 1 < k {
            // Verify the next pre-crash world under this cut prefix, then
            // descend.
            match lin_of(world::<S>(&eras, &cuts, era + 1)) {
                None => return BufferedResult::BudgetExhausted,
                Some(LinResult::NotLinearizable) => continue,
                Some(LinResult::Linearizable { .. }) => {}
            }
            let prefix = candidate_cuts(&eras[era + 1]);
            stack.push(Frame {
                era: era + 1,
                cuts,
                prefix,
            });
        } else {
            // All cuts chosen: verify the recovery world.
            match lin_of(world::<S>(&eras, &cuts, k)) {
                None => return BufferedResult::BudgetExhausted,
                Some(LinResult::NotLinearizable) => continue,
                Some(LinResult::Linearizable { witness }) => {
                    let dropped = count_dropped(&eras, &cuts);
                    return BufferedResult::BufferedDurablyLinearizable {
                        cuts,
                        dropped,
                        witness,
                    };
                }
            }
        }
    }
    BufferedResult::NotBufferedLinearizable
}

/// Completed operations of pre-crash eras whose invocation or response
/// falls at or after the era's cut.
fn count_dropped<Op, Ret>(eras: &[Vec<Event<Op, Ret>>], cuts: &[usize]) -> usize {
    let mut dropped = 0;
    for (era, &cut) in eras.iter().zip(cuts) {
        let mut completed_after = std::collections::HashSet::new();
        for (i, ev) in era.iter().enumerate() {
            if let Event::Respond { id, .. } = ev {
                if i >= cut {
                    completed_after.insert(*id);
                }
            }
        }
        dropped += completed_after.len();
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::check_durably_linearizable;
    use crate::history::{Recorder, ThreadId};
    use crate::spec::{QueueOp, QueueRet, QueueSpec, RegisterOp, RegisterRet, RegisterSpec};

    /// A completed-but-lost write is FORBIDDEN strictly but ALLOWED
    /// buffered — the defining difference between the two criteria.
    #[test]
    fn lost_completed_write_allowed_buffered_forbidden_strict() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.respond(w, RegisterRet::Ok);
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(0));
        let h = rec.finish();
        assert!(!check_durably_linearizable(&RegisterSpec, &h).is_ok());
        let b = check_buffered_durably_linearizable(&RegisterSpec, &h);
        assert!(b.is_ok(), "{b}");
        assert_eq!(b.dropped(), Some(1));
    }

    /// Strictly durable histories pass buffered with zero drops (the cut
    /// search is latest-first).
    #[test]
    fn strict_histories_pass_with_zero_drops() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.respond(w, RegisterRet::Ok);
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(7));
        let h = rec.finish();
        assert!(check_durably_linearizable(&RegisterSpec, &h).is_ok());
        let b = check_buffered_durably_linearizable(&RegisterSpec, &h);
        assert!(b.is_ok());
        assert_eq!(b.dropped(), Some(0));
    }

    /// The drop must be a *suffix*: surviving a later op while losing an
    /// earlier one it depends on is still forbidden.
    #[test]
    fn non_suffix_drop_rejected() {
        // Enq(1); Enq(2) completed sequentially pre-crash. Post-crash, the
        // queue contains only 2: the cut would have to drop Enq(1) but
        // keep Enq(2) — not a consistent cut.
        let rec = Recorder::new();
        let a = rec.invoke(ThreadId(0), 0, QueueOp::Enq(1));
        rec.respond(a, QueueRet::Ok);
        let b = rec.invoke(ThreadId(0), 0, QueueOp::Enq(2));
        rec.respond(b, QueueRet::Ok);
        rec.crash(0);
        let d = rec.invoke(ThreadId(1), 0, QueueOp::Deq);
        rec.respond(d, QueueRet::Deqd(Some(2)));
        let d2 = rec.invoke(ThreadId(1), 0, QueueOp::Deq);
        rec.respond(d2, QueueRet::Deqd(None));
        let h = rec.finish();
        assert!(!check_buffered_durably_linearizable(&QueueSpec, &h).is_ok());
    }

    /// Dropping a whole suffix of a queue history is fine.
    #[test]
    fn suffix_drop_of_queue_accepted() {
        let rec = Recorder::new();
        for v in [1u64, 2, 3] {
            let e = rec.invoke(ThreadId(0), 0, QueueOp::Enq(v));
            rec.respond(e, QueueRet::Ok);
        }
        rec.crash(0);
        // Only the first enqueue survived the crash.
        let d = rec.invoke(ThreadId(1), 0, QueueOp::Deq);
        rec.respond(d, QueueRet::Deqd(Some(1)));
        let d2 = rec.invoke(ThreadId(1), 0, QueueOp::Deq);
        rec.respond(d2, QueueRet::Deqd(None));
        let h = rec.finish();
        let b = check_buffered_durably_linearizable(&QueueSpec, &h);
        assert!(b.is_ok(), "{b}");
        assert_eq!(b.dropped(), Some(2));
    }

    /// Pre-crash answers still have to be consistent *at the time*, even
    /// for operations whose effects are later dropped.
    #[test]
    fn inconsistent_pre_crash_answers_rejected() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.respond(w, RegisterRet::Ok);
        // This read happened pre-crash and must see 7 — claiming 3 is a
        // live linearizability violation, not a durability question.
        let r = rec.invoke(ThreadId(0), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(3));
        rec.crash(0);
        let r2 = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r2, RegisterRet::Value(0));
        let h = rec.finish();
        assert!(!check_buffered_durably_linearizable(&RegisterSpec, &h).is_ok());
    }

    /// Multiple crashes: each era may drop its own suffix.
    #[test]
    fn multiple_crashes_each_era_cut_independently() {
        let rec = Recorder::new();
        let w1 = rec.invoke(ThreadId(0), 0, RegisterOp::Write(1));
        rec.respond(w1, RegisterRet::Ok);
        let w2 = rec.invoke(ThreadId(0), 0, RegisterOp::Write(2));
        rec.respond(w2, RegisterRet::Ok);
        rec.crash(0);
        // Era 1: recovered to 1 (w2 dropped), then writes 5.
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(1));
        let w3 = rec.invoke(ThreadId(1), 0, RegisterOp::Write(5));
        rec.respond(w3, RegisterRet::Ok);
        rec.crash(0);
        // Era 2: recovered to 1 again (w3 dropped too).
        let r2 = rec.invoke(ThreadId(2), 0, RegisterOp::Read);
        rec.respond(r2, RegisterRet::Value(1));
        let h = rec.finish();
        let b = check_buffered_durably_linearizable(&RegisterSpec, &h);
        assert!(b.is_ok(), "{b}");
        assert_eq!(b.dropped(), Some(2));
    }

    /// A rollback to a state that never existed is rejected even with
    /// generous cuts.
    #[test]
    fn phantom_state_rejected() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.respond(w, RegisterRet::Ok);
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(9)); // 9 was never written
        let h = rec.finish();
        assert!(!check_buffered_durably_linearizable(&RegisterSpec, &h).is_ok());
    }

    /// A crash-free history degenerates to plain linearizability.
    #[test]
    fn crash_free_history_is_plain_linearizability() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(4));
        rec.respond(w, RegisterRet::Ok);
        let r = rec.invoke(ThreadId(0), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(4));
        let h = rec.finish();
        let b = check_buffered_durably_linearizable(&RegisterSpec, &h);
        assert!(b.is_ok());
        assert_eq!(b.dropped(), Some(0));
    }

    /// An operation pending at the crash may still take effect afterwards
    /// (the paper's litmus-8 style lingering-cache behavior).
    #[test]
    fn pending_op_may_take_effect_after_crash() {
        let rec = Recorder::new();
        let _w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(7));
        let h = rec.finish();
        assert!(check_buffered_durably_linearizable(&RegisterSpec, &h).is_ok());
    }

    #[test]
    fn ill_formed_history_reported() {
        let h: History<RegisterOp, RegisterRet> =
            History::from_events_unchecked(vec![Event::Respond {
                id: OpId(0),
                ret: RegisterRet::Ok,
            }]);
        let r = check_buffered_durably_linearizable(&RegisterSpec, &h);
        assert!(matches!(r, BufferedResult::IllFormed(_)));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.respond(w, RegisterRet::Ok);
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(0));
        let h = rec.finish();
        let b = check_buffered_with_budget(&RegisterSpec, &h, 1);
        assert!(matches!(b, BufferedResult::BudgetExhausted));
    }

    #[test]
    fn display_forms() {
        let rec: Recorder<RegisterOp, RegisterRet> = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(1));
        rec.respond(w, RegisterRet::Ok);
        let h = rec.finish();
        let b = check_buffered_durably_linearizable(&RegisterSpec, &h);
        assert!(b.to_string().contains("buffered durably linearizable"));
    }
}

#[cfg(test)]
mod proptests {
    //! Cross-validation against the strict checker on random small
    //! register histories:
    //!
    //! * strict durably linearizable ⟹ buffered with **zero** drops;
    //! * buffered rejection ⟹ strict rejection (buffered is weaker);
    //! * crash-free histories: buffered ≡ plain linearizability.

    use proptest::prelude::*;

    use super::*;
    use crate::durable::check_durably_linearizable;
    use crate::history::{Event, OpId, ThreadId};
    use crate::lin::check_linearizable;
    use crate::spec::{RegisterOp, RegisterRet, RegisterSpec};

    /// Builds a well-formed register history from a script of small
    /// numbers: each thread runs sequential ops; crashes interleave.
    fn history_from_script(
        script: &[(u8, u8, u8)],
        crashes: &[usize],
    ) -> History<RegisterOp, RegisterRet> {
        let mut events = Vec::new();
        let mut era = 0usize;
        let crash_set: std::collections::BTreeSet<usize> = crashes.iter().copied().collect();
        for (i, &(kind, val, ret)) in script.iter().enumerate() {
            if crash_set.contains(&i) {
                events.push(Event::Crash { machine: 0 });
                era += 1;
            }
            // One fresh thread per op, all on machine 0 (threads die with
            // the machine, so use era-distinct ids).
            let thread = ThreadId(era * 100 + i);
            let id = OpId(i);
            if kind.is_multiple_of(2) {
                events.push(Event::Invoke {
                    id,
                    thread,
                    machine: 0,
                    op: RegisterOp::Write(u64::from(val % 3)),
                });
                events.push(Event::Respond {
                    id,
                    ret: RegisterRet::Ok,
                });
            } else {
                events.push(Event::Invoke {
                    id,
                    thread,
                    machine: 0,
                    op: RegisterOp::Read,
                });
                events.push(Event::Respond {
                    id,
                    ret: RegisterRet::Value(u64::from(ret % 3)),
                });
            }
        }
        History::from_events_unchecked(events)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn strict_implies_buffered_with_zero_drops(
            script in proptest::collection::vec((0..2u8, 0..3u8, 0..3u8), 1..7),
            crashes in proptest::collection::vec(0..7usize, 0..2),
        ) {
            let h = history_from_script(&script, &crashes);
            prop_assume!(h.validate().is_ok());
            let strict = check_durably_linearizable(&RegisterSpec, &h);
            let buffered = check_buffered_durably_linearizable(&RegisterSpec, &h);
            if strict.is_ok() {
                prop_assert!(buffered.is_ok(), "strict ok but buffered rejected");
                prop_assert_eq!(buffered.dropped(), Some(0));
            }
            if !buffered.is_ok() {
                prop_assert!(!strict.is_ok(), "buffered rejected but strict ok");
            }
        }

        #[test]
        fn crash_free_buffered_equals_plain_linearizability(
            script in proptest::collection::vec((0..2u8, 0..3u8, 0..3u8), 1..7),
        ) {
            let h = history_from_script(&script, &[]);
            prop_assume!(h.validate().is_ok());
            let plain = check_linearizable(&RegisterSpec, &h).is_linearizable();
            let buffered = check_buffered_durably_linearizable(&RegisterSpec, &h).is_ok();
            prop_assert_eq!(plain, buffered);
        }
    }
}
