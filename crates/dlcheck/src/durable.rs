//! Durable linearizability (Izraelevitz et al., adapted to partial
//! crashes as in §6 of the paper): a history is *durably linearizable* if
//! it is well formed and the history obtained by **removing all crash
//! events** is linearizable.
//!
//! As the paper observes, the original abstract happens-before relation
//! needs no modification for partial crashes: crashes simply disappear
//! from the checked history, and operations left pending by a crash are
//! handled by linearizability's usual license to complete or omit pending
//! invocations.

use std::fmt;
use std::hash::Hash;

use crate::history::History;
use crate::lin::{check_linearizable, LinResult};
use crate::spec::SeqSpec;

/// Result of a durable-linearizability check.
#[derive(Debug, Clone)]
pub enum DurableResult<Op> {
    /// The history is durably linearizable.
    DurablyLinearizable {
        /// Witness linearization of the crash-stripped history.
        witness: Vec<(crate::history::OpId, Op)>,
    },
    /// The history is not well formed (description of the violation).
    IllFormed(String),
    /// Well formed, but the crash-free history is not linearizable.
    NotLinearizable,
}

impl<Op> DurableResult<Op> {
    /// True iff the history passed.
    pub fn is_ok(&self) -> bool {
        matches!(self, DurableResult::DurablyLinearizable { .. })
    }
}

impl<Op: fmt::Debug> fmt::Display for DurableResult<Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableResult::DurablyLinearizable { witness } => {
                write!(
                    f,
                    "durably linearizable ({} ops take effect)",
                    witness.len()
                )
            }
            DurableResult::IllFormed(why) => write!(f, "ill-formed history: {why}"),
            DurableResult::NotLinearizable => write!(f, "NOT durably linearizable"),
        }
    }
}

/// Checks durable linearizability of `history` against `spec`.
pub fn check_durably_linearizable<S: SeqSpec>(
    spec: &S,
    history: &History<S::Op, S::Ret>,
) -> DurableResult<S::Op>
where
    S::Op: Clone + fmt::Debug,
    S::Ret: Clone + fmt::Debug + PartialEq,
    S::State: Clone + Hash + Eq,
{
    if let Err(why) = history.validate() {
        return DurableResult::IllFormed(why);
    }
    let stripped = history.strip_crashes();
    match check_linearizable(spec, &stripped) {
        LinResult::Linearizable { witness } => DurableResult::DurablyLinearizable { witness },
        LinResult::NotLinearizable => DurableResult::NotLinearizable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Recorder, ThreadId};
    use crate::spec::{RegisterOp, RegisterRet, RegisterSpec};

    /// The key durability scenario: a completed write must survive a crash.
    #[test]
    fn completed_write_must_survive_crash() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.respond(w, RegisterRet::Ok);
        rec.crash(0);
        // New thread after recovery reads 0 — the write was lost although
        // its response had been delivered: NOT durably linearizable.
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(0));
        let h = rec.finish();
        assert!(!check_durably_linearizable(&RegisterSpec, &h).is_ok());
    }

    /// A write *pending* at the crash may be lost — that is allowed.
    #[test]
    fn pending_write_may_be_lost() {
        let rec = Recorder::new();
        let _w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(0));
        let h = rec.finish();
        assert!(check_durably_linearizable(&RegisterSpec, &h).is_ok());
    }

    /// A pending write may also have taken effect — both outcomes legal.
    #[test]
    fn pending_write_may_take_effect() {
        let rec = Recorder::new();
        let _w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
        rec.crash(0);
        let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(7));
        let h = rec.finish();
        assert!(check_durably_linearizable(&RegisterSpec, &h).is_ok());
    }

    /// Threads on non-crashed machines are unaffected; their completed
    /// ops must persist too.
    #[test]
    fn surviving_machine_sees_consistent_state() {
        let rec = Recorder::new();
        let w = rec.invoke(ThreadId(0), 1, RegisterOp::Write(3));
        rec.respond(w, RegisterRet::Ok);
        rec.crash(0); // some other machine crashes
        let r = rec.invoke(ThreadId(0), 1, RegisterOp::Read);
        rec.respond(r, RegisterRet::Value(3));
        let h = rec.finish();
        assert!(check_durably_linearizable(&RegisterSpec, &h).is_ok());
    }

    #[test]
    fn ill_formed_history_is_reported() {
        use crate::history::{Event, OpId};
        let h: History<RegisterOp, RegisterRet> =
            History::from_events_unchecked(vec![Event::Respond {
                id: OpId(0),
                ret: RegisterRet::Ok,
            }]);
        let r = check_durably_linearizable(&RegisterSpec, &h);
        assert!(matches!(r, DurableResult::IllFormed(_)));
        assert!(r.to_string().contains("ill-formed"));
    }
}
