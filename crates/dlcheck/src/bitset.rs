//! A small growable bitset used as the "linearized ops" mask in the
//! checker's memoization key.

// The checker only needs a subset of the API; the rest rounds out the
// type for tests and future checkers.
#![allow(dead_code)]

/// A fixed-capacity bitset over op indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// True if every bit of `other` is set in `self`.
    pub fn contains_all(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_round_trip() {
        let mut b = BitSet::new(130);
        assert!(!b.get(129));
        b.set(129);
        b.set(0);
        b.set(64);
        assert!(b.get(129) && b.get(0) && b.get(64));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn contains_all_subset_logic() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.set(1);
        a.set(2);
        b.set(1);
        assert!(a.contains_all(&b));
        assert!(!b.contains_all(&a));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = BitSet::new(8);
        let _ = b.get(8);
    }

    #[test]
    fn bitsets_hash_and_compare() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        let mut a = BitSet::new(5);
        s.insert(a.clone());
        a.set(3);
        s.insert(a.clone());
        assert_eq!(s.len(), 2);
        s.insert(a);
        assert_eq!(s.len(), 2);
    }
}
