//! Sequential specifications of the objects we make durable in §6: the
//! checker replays candidate linearizations against these.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Debug;
use std::hash::Hash;

/// A deterministic sequential specification.
///
/// `State` must be cheaply clonable and hashable — the linearizability
/// checker memoizes on `(linearized-set, State)` pairs.
pub trait SeqSpec {
    /// Operation descriptions (e.g. `Enq(3)`).
    type Op: Clone + Debug;
    /// Return values (e.g. `Deq → Some(3)`).
    type Ret: Clone + Debug + PartialEq;
    /// Abstract object state.
    type State: Clone + Debug + Hash + Eq;

    /// The object's initial state.
    fn initial(&self) -> Self::State;

    /// Applies `op` to `state`, returning the next state and return value.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

// ---------------------------------------------------------------------
// Register
// ---------------------------------------------------------------------

/// Operations on an atomic read/write register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOp {
    /// Read the current value.
    Read,
    /// Write a new value.
    Write(u64),
    /// Compare-and-swap: succeed iff the current value equals `.0`.
    Cas(u64, u64),
}

/// Return values of register operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterRet {
    /// Value returned by `Read`.
    Value(u64),
    /// `Write` acknowledgement.
    Ok,
    /// `Cas` outcome.
    CasResult(bool),
}

/// Sequential specification of a 64-bit register initialized to 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegisterSpec;

impl SeqSpec for RegisterSpec {
    type Op = RegisterOp;
    type Ret = RegisterRet;
    type State = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &RegisterOp) -> (u64, RegisterRet) {
        match *op {
            RegisterOp::Read => (*state, RegisterRet::Value(*state)),
            RegisterOp::Write(v) => (v, RegisterRet::Ok),
            RegisterOp::Cas(old, new) => {
                if *state == old {
                    (new, RegisterRet::CasResult(true))
                } else {
                    (*state, RegisterRet::CasResult(false))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// Operations on a fetch-and-add counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOp {
    /// Add `delta`, returning the previous value.
    Add(u64),
    /// Read the current value.
    Get,
}

/// Sequential specification of a wrapping u64 counter initialized to 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterSpec;

impl SeqSpec for CounterSpec {
    type Op = CounterOp;
    type Ret = u64;
    type State = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &CounterOp) -> (u64, u64) {
        match *op {
            CounterOp::Add(d) => (state.wrapping_add(d), *state),
            CounterOp::Get => (*state, *state),
        }
    }
}

// ---------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------

/// Operations on a FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// Enqueue a value at the tail.
    Enq(u64),
    /// Dequeue from the head (`None` when empty).
    Deq,
}

/// Return values of queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRet {
    /// `Enq` acknowledgement.
    Ok,
    /// `Deq` result.
    Deqd(Option<u64>),
}

/// Sequential specification of an initially-empty FIFO queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueSpec;

impl SeqSpec for QueueSpec {
    type Op = QueueOp;
    type Ret = QueueRet;
    type State = VecDeque<u64>;

    fn initial(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn apply(&self, state: &VecDeque<u64>, op: &QueueOp) -> (VecDeque<u64>, QueueRet) {
        let mut s = state.clone();
        match *op {
            QueueOp::Enq(v) => {
                s.push_back(v);
                (s, QueueRet::Ok)
            }
            QueueOp::Deq => {
                let v = s.pop_front();
                (s, QueueRet::Deqd(v))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stack
// ---------------------------------------------------------------------

/// Operations on a LIFO stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOp {
    /// Push a value.
    Push(u64),
    /// Pop the top value (`None` when empty).
    Pop,
}

/// Return values of stack operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackRet {
    /// `Push` acknowledgement.
    Ok,
    /// `Pop` result.
    Popped(Option<u64>),
}

/// Sequential specification of an initially-empty LIFO stack.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackSpec;

impl SeqSpec for StackSpec {
    type Op = StackOp;
    type Ret = StackRet;
    type State = Vec<u64>;

    fn initial(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u64>, op: &StackOp) -> (Vec<u64>, StackRet) {
        let mut s = state.clone();
        match *op {
            StackOp::Push(v) => {
                s.push(v);
                (s, StackRet::Ok)
            }
            StackOp::Pop => {
                let v = s.pop();
                (s, StackRet::Popped(v))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------

/// Operations on a key-value map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// Insert or update a binding, returning the previous value.
    Insert(u64, u64),
    /// Look up a key.
    Get(u64),
    /// Remove a binding, returning the removed value.
    Remove(u64),
}

/// Return values of map operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapRet {
    /// Previous binding for `Insert` / `Remove`, or lookup result for `Get`.
    Value(Option<u64>),
}

/// Sequential specification of an initially-empty map.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapSpec;

impl SeqSpec for MapSpec {
    type Op = MapOp;
    type Ret = MapRet;
    type State = BTreeMap<u64, u64>;

    fn initial(&self) -> BTreeMap<u64, u64> {
        BTreeMap::new()
    }

    fn apply(&self, state: &BTreeMap<u64, u64>, op: &MapOp) -> (BTreeMap<u64, u64>, MapRet) {
        let mut s = state.clone();
        let ret = match *op {
            MapOp::Insert(k, v) => MapRet::Value(s.insert(k, v)),
            MapOp::Get(k) => MapRet::Value(s.get(&k).copied()),
            MapOp::Remove(k) => MapRet::Value(s.remove(&k)),
        };
        (s, ret)
    }
}

// ---------------------------------------------------------------------
// Set
// ---------------------------------------------------------------------

/// Operations on a sorted set of keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Insert a key; returns whether it was newly added.
    Insert(u64),
    /// Remove a key; returns whether it was present.
    Remove(u64),
    /// Membership test.
    Contains(u64),
}

/// Sequential specification of an initially-empty set.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetSpec;

impl SeqSpec for SetSpec {
    type Op = SetOp;
    type Ret = bool;
    type State = std::collections::BTreeSet<u64>;

    fn initial(&self) -> Self::State {
        std::collections::BTreeSet::new()
    }

    fn apply(&self, state: &Self::State, op: &SetOp) -> (Self::State, bool) {
        let mut s = state.clone();
        let ret = match *op {
            SetOp::Insert(k) => s.insert(k),
            SetOp::Remove(k) => s.remove(&k),
            SetOp::Contains(k) => s.contains(&k),
        };
        (s, ret)
    }
}

// ---------------------------------------------------------------------
// Append-only log
// ---------------------------------------------------------------------

/// Operations on an append-only log with dense indices (the abstract view
/// of `cxl0-runtime`'s `DurableLog` when no producer crashes mid-append;
/// holes/junk are a representation detail below this spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Append a value; returns the assigned index.
    Append(u64),
    /// Read the value at an index.
    Read(u64),
}

/// Return values of log operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogRet {
    /// Index assigned by `Append`.
    Index(u64),
    /// `Read` result (`None` = nothing at that index).
    Slot(Option<u64>),
}

/// Sequential specification of an unbounded append-only log.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogSpec;

impl SeqSpec for LogSpec {
    type Op = LogOp;
    type Ret = LogRet;
    type State = Vec<u64>;

    fn initial(&self) -> Vec<u64> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u64>, op: &LogOp) -> (Vec<u64>, LogRet) {
        match *op {
            LogOp::Append(v) => {
                let mut s = state.clone();
                s.push(v);
                (s.clone(), LogRet::Index(s.len() as u64 - 1))
            }
            LogOp::Read(i) => (state.clone(), LogRet::Slot(state.get(i as usize).copied())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_appends_densely_and_reads_back() {
        let spec = LogSpec;
        let (s, r) = spec.apply(&spec.initial(), &LogOp::Append(7));
        assert_eq!(r, LogRet::Index(0));
        let (s, r) = spec.apply(&s, &LogOp::Append(9));
        assert_eq!(r, LogRet::Index(1));
        let (s, r) = spec.apply(&s, &LogOp::Read(1));
        assert_eq!(r, LogRet::Slot(Some(9)));
        let (_, r) = spec.apply(&s, &LogOp::Read(5));
        assert_eq!(r, LogRet::Slot(None));
    }

    #[test]
    fn set_insert_remove_contains() {
        let spec = SetSpec;
        let (s, r) = spec.apply(&spec.initial(), &SetOp::Insert(3));
        assert!(r);
        let (s, r) = spec.apply(&s, &SetOp::Insert(3));
        assert!(!r);
        let (s, r) = spec.apply(&s, &SetOp::Contains(3));
        assert!(r);
        let (s, r) = spec.apply(&s, &SetOp::Remove(3));
        assert!(r);
        let (_, r) = spec.apply(&s, &SetOp::Remove(3));
        assert!(!r);
    }

    #[test]
    fn register_spec_cas_semantics() {
        let spec = RegisterSpec;
        let s0 = spec.initial();
        let (s1, r1) = spec.apply(&s0, &RegisterOp::Cas(0, 5));
        assert_eq!(r1, RegisterRet::CasResult(true));
        let (s2, r2) = spec.apply(&s1, &RegisterOp::Cas(0, 9));
        assert_eq!(r2, RegisterRet::CasResult(false));
        assert_eq!(s2, 5);
        let (_, r3) = spec.apply(&s2, &RegisterOp::Read);
        assert_eq!(r3, RegisterRet::Value(5));
    }

    #[test]
    fn counter_returns_previous_value() {
        let spec = CounterSpec;
        let (s, r) = spec.apply(&spec.initial(), &CounterOp::Add(3));
        assert_eq!(r, 0);
        let (_, r2) = spec.apply(&s, &CounterOp::Get);
        assert_eq!(r2, 3);
    }

    #[test]
    fn queue_is_fifo() {
        let spec = QueueSpec;
        let mut s = spec.initial();
        for v in [1, 2, 3] {
            s = spec.apply(&s, &QueueOp::Enq(v)).0;
        }
        let (s, r) = spec.apply(&s, &QueueOp::Deq);
        assert_eq!(r, QueueRet::Deqd(Some(1)));
        let (_, r) = spec.apply(&s, &QueueOp::Deq);
        assert_eq!(r, QueueRet::Deqd(Some(2)));
    }

    #[test]
    fn stack_is_lifo_and_empty_pop_is_none() {
        let spec = StackSpec;
        let (s, _) = spec.apply(&spec.initial(), &StackOp::Push(7));
        let (s, r) = spec.apply(&s, &StackOp::Pop);
        assert_eq!(r, StackRet::Popped(Some(7)));
        let (_, r) = spec.apply(&s, &StackOp::Pop);
        assert_eq!(r, StackRet::Popped(None));
    }

    #[test]
    fn map_insert_get_remove_round_trip() {
        let spec = MapSpec;
        let (s, r) = spec.apply(&spec.initial(), &MapOp::Insert(1, 10));
        assert_eq!(r, MapRet::Value(None));
        let (s, r) = spec.apply(&s, &MapOp::Insert(1, 20));
        assert_eq!(r, MapRet::Value(Some(10)));
        let (s, r) = spec.apply(&s, &MapOp::Get(1));
        assert_eq!(r, MapRet::Value(Some(20)));
        let (s, r) = spec.apply(&s, &MapOp::Remove(1));
        assert_eq!(r, MapRet::Value(Some(20)));
        let (_, r) = spec.apply(&s, &MapOp::Get(1));
        assert_eq!(r, MapRet::Value(None));
    }
}
