//! Concurrent histories: sequences of invocation, response and crash
//! events, in the style of Herlihy & Wing extended with the paper's
//! partial-crash events (§6, *Correctness Guarantees*).
//!
//! A [`Recorder`] produces histories from live concurrent executions: it
//! timestamps events with a global sequence number under a lock, which is
//! sound because recording happens inside the runtime's linearization
//! points (see `cxl0-runtime`).

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Identifier of one operation instance within a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub usize);

/// Identifier of a thread. Threads never outlive a crash of their machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

/// One event of a concurrent history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<Op, Ret> {
    /// Thread `thread` (running on `machine`) invokes operation `id`.
    Invoke {
        /// The operation instance.
        id: OpId,
        /// The invoking thread.
        thread: ThreadId,
        /// The machine the thread runs on (its failure domain).
        machine: usize,
        /// The operation.
        op: Op,
    },
    /// Operation `id` returns `ret`.
    Respond {
        /// The operation instance.
        id: OpId,
        /// The returned value.
        ret: Ret,
    },
    /// Machine `machine` crashes: every thread on it stops instantly;
    /// their pending operations never respond.
    Crash {
        /// The crashed machine.
        machine: usize,
    },
}

/// A complete recorded history.
#[derive(Debug, Clone, Default)]
pub struct History<Op, Ret> {
    events: Vec<Event<Op, Ret>>,
}

impl<Op: Clone + fmt::Debug, Ret: Clone + fmt::Debug> History<Op, Ret> {
    /// An empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Builds a history from raw events.
    ///
    /// # Panics
    ///
    /// Panics if the event sequence is not well formed (see
    /// [`History::validate`]).
    pub fn from_events(events: Vec<Event<Op, Ret>>) -> Self {
        let h = History { events };
        h.validate().expect("ill-formed history");
        h
    }

    /// Builds a history from raw events **without** validating. Useful for
    /// feeding deliberately ill-formed histories to the checkers in tests.
    pub fn from_events_unchecked(events: Vec<Event<Op, Ret>>) -> Self {
        History { events }
    }

    /// The events in order.
    pub fn events(&self) -> &[Event<Op, Ret>] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of operations (invocations).
    pub fn num_ops(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Invoke { .. }))
            .count()
    }

    /// Checks abstract well-formedness (§6): each thread's subsequence is
    /// an alternation of invocations and matching responses, possibly
    /// ending with a pending invocation; threads on a crashed machine emit
    /// no further events after the crash.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::{HashMap, HashSet};
        // Machines recover after a crash: new threads may run on them. Only
        // the threads alive *at* the crash die with it (the paper: "new
        // threads with new and distinct identifiers are spawned").
        let mut pending_by_thread: HashMap<ThreadId, Option<OpId>> = HashMap::new();
        let mut machine_of_thread: HashMap<ThreadId, usize> = HashMap::new();
        let mut dead_threads: HashSet<ThreadId> = HashSet::new();
        let mut op_thread: HashMap<OpId, ThreadId> = HashMap::new();
        let mut responded: HashSet<OpId> = HashSet::new();

        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                Event::Invoke {
                    id,
                    thread,
                    machine,
                    ..
                } => {
                    if dead_threads.contains(thread) {
                        return Err(format!(
                            "event {i}: crashed thread {thread:?} invokes an operation"
                        ));
                    }
                    if let Some(&m) = machine_of_thread.get(thread) {
                        if m != *machine {
                            return Err(format!(
                                "event {i}: thread {thread:?} moved between machines"
                            ));
                        }
                    } else {
                        machine_of_thread.insert(*thread, *machine);
                    }
                    let slot = pending_by_thread.entry(*thread).or_insert(None);
                    if slot.is_some() {
                        return Err(format!(
                            "event {i}: thread {thread:?} invokes while an op is pending"
                        ));
                    }
                    if op_thread.insert(*id, *thread).is_some() {
                        return Err(format!("event {i}: duplicate op id {id:?}"));
                    }
                    *slot = Some(*id);
                }
                Event::Respond { id, .. } => {
                    let Some(thread) = op_thread.get(id).copied() else {
                        return Err(format!("event {i}: response to unknown op {id:?}"));
                    };
                    if responded.contains(id) {
                        return Err(format!("event {i}: duplicate response for {id:?}"));
                    }
                    if dead_threads.contains(&thread) {
                        return Err(format!(
                            "event {i}: response from crashed thread {thread:?}"
                        ));
                    }
                    match pending_by_thread.get_mut(&thread) {
                        Some(slot @ Some(_)) if *slot == Some(*id) => *slot = None,
                        _ => {
                            return Err(format!(
                                "event {i}: response {id:?} does not match thread's pending op"
                            ))
                        }
                    }
                    responded.insert(*id);
                }
                Event::Crash { machine } => {
                    // Every thread currently on this machine dies with its
                    // pending op left pending forever.
                    for (t, m) in &machine_of_thread {
                        if m == machine {
                            dead_threads.insert(*t);
                            if let Some(slot) = pending_by_thread.get_mut(t) {
                                *slot = None;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The crash-free history used by durable linearizability: crash
    /// events removed, everything else kept (pending invocations of
    /// crashed threads remain pending).
    pub fn strip_crashes(&self) -> History<Op, Ret> {
        History {
            events: self
                .events
                .iter()
                .filter(|e| !matches!(e, Event::Crash { .. }))
                .cloned()
                .collect(),
        }
    }

    /// Number of crash events.
    pub fn num_crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Crash { .. }))
            .count()
    }
}

/// Thread-safe history recorder for live executions.
///
/// # Examples
///
/// ```
/// use cxl0_dlcheck::{Recorder, ThreadId};
///
/// let rec: Recorder<&'static str, u64> = Recorder::new();
/// let id = rec.invoke(ThreadId(0), 0, "get");
/// rec.respond(id, 42);
/// let h = rec.finish();
/// assert_eq!(h.num_ops(), 1);
/// assert!(h.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct Recorder<Op, Ret> {
    inner: Arc<Mutex<RecorderInner<Op, Ret>>>,
}

#[derive(Debug)]
struct RecorderInner<Op, Ret> {
    events: Vec<Event<Op, Ret>>,
    next_op: usize,
}

impl<Op, Ret> Clone for Recorder<Op, Ret> {
    fn clone(&self) -> Self {
        Recorder {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<Op, Ret> Default for Recorder<Op, Ret> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Op, Ret> Recorder<Op, Ret> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                events: Vec::new(),
                next_op: 0,
            })),
        }
    }

    /// Records an invocation by `thread` on `machine`, allocating an op id.
    pub fn invoke(&self, thread: ThreadId, machine: usize, op: Op) -> OpId {
        let mut g = self.inner.lock();
        let id = OpId(g.next_op);
        g.next_op += 1;
        g.events.push(Event::Invoke {
            id,
            thread,
            machine,
            op,
        });
        id
    }

    /// Records the response of `id`.
    pub fn respond(&self, id: OpId, ret: Ret) {
        self.inner.lock().events.push(Event::Respond { id, ret });
    }

    /// Records a crash of `machine`.
    pub fn crash(&self, machine: usize) {
        self.inner.lock().events.push(Event::Crash { machine });
    }

    /// Extracts the recorded history.
    pub fn finish(&self) -> History<Op, Ret> {
        History {
            events: std::mem::take(&mut self.inner.lock().events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = History<&'static str, u64>;

    #[test]
    fn sequential_history_is_well_formed() {
        let rec = Recorder::new();
        let a = rec.invoke(ThreadId(0), 0, "a");
        rec.respond(a, 1);
        let b = rec.invoke(ThreadId(0), 0, "b");
        rec.respond(b, 2);
        let h: H = rec.finish();
        assert!(h.validate().is_ok());
        assert_eq!(h.num_ops(), 2);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn overlapping_invocations_same_thread_rejected() {
        let h: H = History {
            events: vec![
                Event::Invoke {
                    id: OpId(0),
                    thread: ThreadId(0),
                    machine: 0,
                    op: "a",
                },
                Event::Invoke {
                    id: OpId(1),
                    thread: ThreadId(0),
                    machine: 0,
                    op: "b",
                },
            ],
        };
        assert!(h.validate().unwrap_err().contains("pending"));
    }

    #[test]
    fn events_after_crash_rejected() {
        let h: H = History {
            events: vec![
                Event::Invoke {
                    id: OpId(0),
                    thread: ThreadId(0),
                    machine: 0,
                    op: "a",
                },
                Event::Crash { machine: 0 },
                Event::Respond {
                    id: OpId(0),
                    ret: 1,
                },
            ],
        };
        assert!(h.validate().is_err());
    }

    #[test]
    fn crash_makes_pending_ops_stay_pending() {
        let rec: Recorder<&'static str, u64> = Recorder::new();
        let _a = rec.invoke(ThreadId(0), 0, "a");
        rec.crash(0);
        let b = rec.invoke(ThreadId(1), 1, "b");
        rec.respond(b, 7);
        let h = rec.finish();
        assert!(h.validate().is_ok());
        assert_eq!(h.num_crashes(), 1);
        let stripped = h.strip_crashes();
        assert_eq!(stripped.num_crashes(), 0);
        assert_eq!(stripped.num_ops(), 2);
        assert!(stripped.validate().is_ok());
    }

    #[test]
    fn response_without_invoke_rejected() {
        let h: H = History {
            events: vec![Event::Respond {
                id: OpId(3),
                ret: 0,
            }],
        };
        assert!(h.validate().unwrap_err().contains("unknown op"));
    }

    #[test]
    fn thread_cannot_migrate_machines() {
        let h: H = History {
            events: vec![
                Event::Invoke {
                    id: OpId(0),
                    thread: ThreadId(0),
                    machine: 0,
                    op: "a",
                },
                Event::Respond {
                    id: OpId(0),
                    ret: 0,
                },
                Event::Invoke {
                    id: OpId(1),
                    thread: ThreadId(0),
                    machine: 1,
                    op: "b",
                },
            ],
        };
        assert!(h.validate().unwrap_err().contains("moved between machines"));
    }
}
