//! A brute-force reference linearizability checker: enumerates every
//! subset of pending operations to include and every interleaving
//! consistent with real-time order, with **no** memoization or pruning
//! beyond spec mismatch.
//!
//! Exponential — only usable on tiny histories. Exists to cross-validate
//! the memoized checker in property tests.

use std::fmt;
use std::hash::Hash;

use crate::history::History;
use crate::lin::{collect_ops, OpRecord};
use crate::spec::SeqSpec;

/// Brute-force linearizability check. Returns `true` iff linearizable.
pub fn brute_force_linearizable<S: SeqSpec>(spec: &S, history: &History<S::Op, S::Ret>) -> bool
where
    S::Op: Clone + fmt::Debug,
    S::Ret: Clone + fmt::Debug + PartialEq,
    S::State: Clone + Hash + Eq,
{
    let ops = collect_ops(history);
    let n = ops.len();
    assert!(n <= 16, "brute force checker is for tiny histories only");

    let pending: Vec<usize> = (0..n).filter(|&j| ops[j].response.is_none()).collect();
    // Enumerate inclusion subsets of pending ops.
    for subset in 0..(1u32 << pending.len()) {
        let mut included = vec![false; n];
        for (b, &j) in pending.iter().enumerate() {
            included[j] = subset & (1 << b) != 0;
        }
        for (j, o) in ops.iter().enumerate() {
            if o.response.is_some() {
                included[j] = true;
            }
        }
        if search(spec, &ops, &included, &mut vec![false; n], &spec.initial()) {
            return true;
        }
    }
    false
}

fn search<S: SeqSpec>(
    spec: &S,
    ops: &[OpRecord<S::Op, S::Ret>],
    included: &[bool],
    used: &mut Vec<bool>,
    state: &S::State,
) -> bool
where
    S::Op: Clone + fmt::Debug,
    S::Ret: Clone + fmt::Debug + PartialEq,
{
    if (0..ops.len()).all(|j| !included[j] || used[j]) {
        return true;
    }
    'next: for j in 0..ops.len() {
        if !included[j] || used[j] {
            continue;
        }
        // Real-time order: every *completed* op responding before j's
        // invocation must already be used.
        for (k, q) in ops.iter().enumerate() {
            if k == j || !included[k] || used[k] {
                continue;
            }
            if let Some((resp, _)) = &q.response {
                if *resp < ops[j].invoked_at {
                    continue 'next;
                }
            }
        }
        let (next, ret) = spec.apply(state, &ops[j].op);
        if let Some((_, actual)) = &ops[j].response {
            if *actual != ret {
                continue;
            }
        }
        used[j] = true;
        if search(spec, ops, included, used, &next) {
            used[j] = false;
            return true;
        }
        used[j] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Event, OpId, ThreadId};
    use crate::lin::check_linearizable;
    use crate::spec::{RegisterOp, RegisterRet, RegisterSpec};
    use proptest::prelude::*;

    /// Random small register histories: the memoized checker and the brute
    /// force checker must agree.
    fn arb_history() -> impl Strategy<Value = History<RegisterOp, RegisterRet>> {
        // Generate 2 threads × up to 3 ops each as (op, respond?) pairs,
        // then interleave deterministically from a seed.
        let op = prop_oneof![
            Just(RegisterOp::Read),
            (0u64..3).prop_map(RegisterOp::Write),
            (0u64..3, 0u64..3).prop_map(|(a, b)| RegisterOp::Cas(a, b)),
        ];
        let per_thread = proptest::collection::vec((op, any::<bool>(), 0u64..3), 0..3);
        (per_thread.clone(), per_thread, any::<u64>()).prop_map(|(t0, t1, seed)| {
            let mut events = Vec::new();
            let mut id = 0usize;
            let mut queues = [t0, t1];
            let mut rng = seed;
            let mut pending: [Option<(OpId, RegisterOp, bool, u64)>; 2] = [None, None];
            loop {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let t = (rng >> 33) as usize % 2;
                if let Some((oid, op, respond, rv)) = pending[t].take() {
                    if respond {
                        let ret = match op {
                            RegisterOp::Read => RegisterRet::Value(rv),
                            RegisterOp::Write(_) => RegisterRet::Ok,
                            RegisterOp::Cas(..) => RegisterRet::CasResult(rv.is_multiple_of(2)),
                        };
                        events.push(Event::Respond { id: oid, ret });
                    } else {
                        // Op stays pending forever; the thread is stuck on
                        // it and never issues another op (well-formedness).
                        queues[t].clear();
                    }
                    continue;
                }
                if let Some((op, respond, rv)) = queues[t].pop() {
                    let oid = OpId(id);
                    id += 1;
                    events.push(Event::Invoke {
                        id: oid,
                        thread: ThreadId(t),
                        machine: 0,
                        op,
                    });
                    pending[t] = Some((oid, op, respond, rv));
                } else if queues[(t + 1) % 2].is_empty() && pending[(t + 1) % 2].is_none() {
                    break;
                }
            }
            History::from_events_unchecked(events)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]
        #[test]
        fn memoized_checker_agrees_with_brute_force(h in arb_history()) {
            prop_assume!(h.num_ops() <= 6);
            let fast = check_linearizable(&RegisterSpec, &h).is_linearizable();
            let slow = brute_force_linearizable(&RegisterSpec, &h);
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn trivially_agrees_on_empty() {
        let h: History<RegisterOp, RegisterRet> = History::new();
        assert!(brute_force_linearizable(&RegisterSpec, &h));
        assert!(check_linearizable(&RegisterSpec, &h).is_linearizable());
    }
}
