//! # `cxl0-dlcheck` — (durable) linearizability checking
//!
//! Histories, sequential specifications, and checkers for the correctness
//! criterion that §6 of the CXL0 paper targets: **durable linearizability**
//! (Izraelevitz et al.) in the *partial-crash* model.
//!
//! * [`history`] — invocation/response/crash events, well-formedness, and
//!   a thread-safe [`Recorder`] for live executions;
//! * [`spec`] — sequential specs for the objects made durable in §6
//!   (register, counter, queue, stack, map);
//! * [`lin`] — a Wing&Gong-style memoized linearizability checker that
//!   handles pending invocations (complete-or-omit);
//! * [`durable`] — durable linearizability: strip crashes, then check;
//! * [`buffered`] — *buffered* durable linearizability (§8's relaxation):
//!   a crash may drop a suffix of completed operations, provided what
//!   survives is a consistent cut;
//! * [`brute`] — a brute-force reference checker for cross-validation.
//!
//! ## Example
//!
//! ```
//! use cxl0_dlcheck::{Recorder, ThreadId, check_durably_linearizable};
//! use cxl0_dlcheck::spec::{RegisterOp, RegisterRet, RegisterSpec};
//!
//! let rec = Recorder::new();
//! let w = rec.invoke(ThreadId(0), 0, RegisterOp::Write(7));
//! rec.respond(w, RegisterRet::Ok);
//! rec.crash(0);
//! let r = rec.invoke(ThreadId(1), 0, RegisterOp::Read);
//! rec.respond(r, RegisterRet::Value(7)); // the completed write survived
//! assert!(check_durably_linearizable(&RegisterSpec, &rec.finish()).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod bitset;
pub mod brute;
pub mod buffered;
pub mod durable;
pub mod history;
pub mod lin;
pub mod spec;

pub use buffered::{check_buffered_durably_linearizable, BufferedResult};
pub use durable::{check_durably_linearizable, DurableResult};
pub use history::{Event, History, OpId, Recorder, ThreadId};
pub use lin::{check_linearizable, LinResult, OpRecord};
pub use spec::SeqSpec;
