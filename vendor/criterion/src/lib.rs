//! Offline shim of the [`criterion`] API surface this workspace's benches
//! use: `Criterion`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched. This shim measures median wall-clock time over
//! `sample_size` samples and prints one line per benchmark — no warm-up
//! modelling, outlier analysis, or HTML reports. Bench *code* compiles and
//! runs identically, so `cargo bench --no-run` gives the same bit-rot
//! protection as with the real crate.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function part and a parameter part.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with only a parameter part.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its median wall-clock time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed pass to touch caches/lazy state.
        black_box(routine());
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
        }
        samples.sort();
        self.elapsed = Some(samples[samples.len() / 2]);
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size,
        elapsed: None,
    };
    f(&mut b);
    match b.elapsed {
        Some(t) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if t.as_secs_f64() > 0.0 => {
                    format!("  ({:.3e} elem/s)", n as f64 / t.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if t.as_secs_f64() > 0.0 => {
                    format!("  ({:.3e} B/s)", n as f64 / t.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench: {name:<60} median {t:>12.3?}{rate}");
        }
        None => println!("bench: {name:<60} (no measurement: Bencher::iter never called)"),
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    // Held only so groups serialize like real criterion's borrow does.
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group only (as in real
    /// criterion, the parent `Criterion` is unaffected).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real default (100) makes some simulation benches take
        // minutes; 20 keeps `cargo bench` usable while staying a median.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Honoured for CLI compatibility; this shim takes no arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            throughput: None,
            sample_size,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        run_one(&id.into().to_string(), self.sample_size, None, f);
    }
}

/// Declares a group function running the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
