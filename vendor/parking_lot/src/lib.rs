//! Offline shim of the [`parking_lot`] API surface this workspace uses:
//! `Mutex`, `RwLock` and their guards, with `parking_lot`'s non-poisoning
//! semantics, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched. Like `parking_lot`, `lock()`/`read()`/`write()` return
//! guards directly (no `Result`); a panic while holding a lock does not
//! poison it for later users.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot/0.12

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader–writer lock that does not poison on panic.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
