//! Value-generation strategies: the [`Strategy`] trait and the
//! combinators the workspace uses (ranges, tuples, `Just`, `prop_map`,
//! `prop_oneof!` unions, boxing).

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws a single concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice between strategies of one value type; built by the
/// `prop_oneof!` macro.
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.next_u64() as usize % self.arms.len();
        self.arms[k].generate(rng)
    }
}

// Range sampling delegates to the vendored `rand` shim's `SampleRange`,
// keeping one copy of the width/modulo logic.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_from(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_from(self.clone(), rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
