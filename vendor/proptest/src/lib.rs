//! Offline shim of the slice of the [`proptest`] API this workspace uses.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched. This shim keeps the same *testing semantics* — random
//! generation of structured inputs, many cases per property, assumption
//! rejection — with two deliberate simplifications:
//!
//! * **no shrinking**: a failing case reports the generated input verbatim;
//! * **deterministic seeding**: every run draws the same case sequence, so
//!   CI failures always reproduce locally.
//!
//! Supported surface: [`strategy::Strategy`] (with `prop_map`/`boxed`),
//! [`strategy::Just`],
//! ranges and tuples as strategies, [`collection::vec`], [`sample::select`],
//! [`arbitrary::any`], [`test_runner::TestRunner`], and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros.
//!
//! [`proptest`]: https://docs.rs/proptest/1

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! The `any::<T>()` entry point for simple scalar types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies over fixed value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.next_u64() as usize % self.options.len();
            self.options[k].clone()
        }
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Chooses uniformly between several strategies with the same value type.
///
/// Only the unweighted `prop_oneof![a, b, c]` form is supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the current case
/// (rather than aborting the whole process) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Rejects the current case (it is skipped, not failed) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(xs in collection::vec(0u8..4, 0..10), flag in any::<bool>()) {
///         prop_assert!(xs.len() < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            { $crate::test_runner::ProptestConfig::default() }
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $config:expr } ) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new_for_test(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            $(let $arg = $strat;)+
            runner.run_cases(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, rng);)+
                // Render the inputs before the body runs: the body takes
                // ownership of them.
                let __input_desc = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                    $(&$arg),+
                );
                let result: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                result.map_err(|e| e.with_input(__input_desc))
            });
        }
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
}
