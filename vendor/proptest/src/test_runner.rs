//! Case execution: configuration, the deterministic RNG, failure
//! plumbing, and the [`TestRunner`].

use std::fmt;

use crate::strategy::Strategy;

/// Run configuration. Only `cases` is honoured (the real crate's other
/// knobs concern shrinking and persistence, which this shim omits).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Alias kept for source compatibility with `proptest::test_runner::Config`.
pub type Config = ProptestConfig;

/// Deterministic generator driving all strategies; the core is the
/// vendored `rand` shim's xoshiro256++ `StdRng`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seeds deterministically from an arbitrary byte string (such as a
    /// test's module path), so distinct tests draw distinct sequences but
    /// every run of one test draws the same sequence.
    pub fn from_name(name: &str) -> Self {
        use rand::SeedableRng;
        // FNV-1a over the name picks the 64-bit seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is false for this input.
    Fail {
        /// The assertion message.
        message: String,
        /// Rendering of the generated inputs, when known.
        input: Option<String>,
    },
    /// `prop_assume!`-style rejection: the input is outside the property's
    /// precondition and the case should be skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail {
            message: message.into(),
            input: None,
        }
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Attaches a rendering of the generated inputs to a failure.
    pub fn with_input(self, input: String) -> Self {
        match self {
            TestCaseError::Fail { message, .. } => TestCaseError::Fail {
                message,
                input: Some(input),
            },
            reject => reject,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail { message, input } => {
                write!(f, "{message}")?;
                if let Some(input) = input {
                    write!(f, "\nfailing input (unshrunk):\n{input}")?;
                }
                Ok(())
            }
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
        }
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Error returned by [`TestRunner::run`] when a case fails.
#[derive(Debug, Clone)]
pub struct TestError {
    /// The underlying case failure.
    pub error: TestCaseError,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "property test failed: {}", self.error)
    }
}

impl std::error::Error for TestError {}

/// Executes many cases of a property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner {
            config: ProptestConfig::default(),
            rng: TestRng::from_name("proptest::test_runner::TestRunner::default"),
        }
    }
}

impl TestRunner {
    /// Builds a runner with `config` and a seed derived from `name`.
    pub fn new_for_test(config: ProptestConfig, name: &str) -> Self {
        TestRunner {
            rng: TestRng::from_name(name),
            config,
        }
    }

    /// Builds a runner with `config` and a fixed default seed.
    pub fn new(config: ProptestConfig) -> Self {
        Self::new_for_test(config, "proptest::test_runner::TestRunner::new")
    }

    /// Runs up to `cases` draws from `strategy` through `test`,
    /// returning the first failure. Rejections are skipped (with a cap
    /// against vacuous properties).
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) -> Result<(), TestError> {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "property rejected too many inputs \
                             ({rejected} rejections for {passed} passes)"
                        );
                    }
                }
                Err(error) => return Err(TestError { error }),
            }
        }
        Ok(())
    }

    /// Driver for the `proptest!` macro: like [`TestRunner::run`] but the
    /// closure draws its own inputs from the RNG, and failures panic (so
    /// the surrounding `#[test]` fails normally).
    pub fn run_cases(&mut self, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        while passed < self.config.cases {
            match case(&mut self.rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "property rejected too many inputs \
                             ({rejected} rejections for {passed} passes)"
                        );
                    }
                }
                Err(error) => panic!("property test failed after {passed} passing cases: {error}"),
            }
        }
    }
}
