//! Offline shim of the tiny slice of the [`rand` 0.8] API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched; every workspace use of randomness is seeded and only needs a
//! deterministic, statistically-reasonable generator. The core is
//! xoshiro256++ seeded through SplitMix64 — the same construction the real
//! `rand_xoshiro`/`SmallRng` family uses.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the one required method.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the generator's raw bits,
/// mirroring `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly, mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = ((hi as $u).wrapping_sub(lo as $u) as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience methods over an [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value via the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng` (which makes no reproducibility promise across versions
    /// anyway; this one is fixed forever).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = r.gen_range(0..4u64);
            assert!(v < 4);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4);
        for _ in 0..1000 {
            let v = r.gen_range(1..=3u64);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
